//! `graphct` — command-line front end.
//!
//! Mirrors how an analyst drives GraphCT: run an analysis script over a
//! graph file, generate synthetic graphs or tweet corpora, or fire a
//! single kernel.  Run `graphct help` for usage.

use graphct_core::builder::build_undirected_simple;
use graphct_core::{CompressedCsr, CsrGraph, EdgeList, GraphView, MmapCsr};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

/// Counting allocator so traced runs report peak live bytes
/// (`peak_live_bytes` gauge in every metrics export).
#[global_allocator]
static ALLOC: graphct_trace::CountingAllocator = graphct_trace::CountingAllocator;

const USAGE: &str = "graphct — massive social network analysis toolkit

USAGE:
  graphct script <file> [--base-dir DIR]       run a GraphCT analysis script
  graphct gen rmat --scale S [--edge-factor F] [--seed N] --out FILE
  graphct gen er --vertices N --edges M [--seed N] --out FILE
  graphct gen ba --vertices N --attach M [--seed N] --out FILE
  graphct tweets <h1n1|atlflood|sep1> [--scale-pct P] [--seed N] --out FILE
                                               generate a synthetic tweet
                                               mention graph (edge list)
  graphct stats <graph> [--frontier KIND] [--alpha A] [--beta B]
                [--reorder PASS] [--batch K] [--backend B]
                                               degrees, components, diameter
  graphct components <graph> [--top K] [--reorder PASS] [--backend B]
                                               connected components summary
  graphct bc <graph> [--samples N] [--seed N] [--top K]
              [--frontier KIND] [--alpha A] [--beta B] [--reorder PASS]
              [--batch K] [--backend B]        (approximate) betweenness
  graphct triangles <graph> [--top K] [--reorder PASS] [--backend B]
                                               forward triangle counts, per-
                                               vertex clustering, transitivity
  graphct triangles <graph> --census           16-class Holland-Leinhardt
                                               triad census (directed graphs)
  graphct convert <in> <out.bin>               rewrite any graph file as a
                                               format-v2 binary (the layout
                                               --backend mmap maps in place)
  graphct serve [--profile h1n1|atlflood|sep1] [--scale-pct P] [--seed N]
                [--port P | --addr HOST:PORT] [--batch-size N] [--batches N]
                [--interval-ms MS] [--window N] [--trace-out FILE]
                [--stall-timeout-ms MS] [--profile-hz HZ]
                [--snapshot-every N] [--query-threads N] [--topk K]
                                               live monitoring + query plane:
                                               paced tweet-stream ingest with
                                               epoch-tagged snapshot freezes
                                               served over HTTP; Ctrl-C
                                               drains; a stall past the
                                               watchdog deadline turns
                                               /healthz 503
  graphct trace flame <trace.jsonl> [--out FILE]
                                               folded stacks (flamegraph input)
  graphct trace critical-path <trace.jsonl>    slowest span chains
  graphct trace imbalance <trace.jsonl>        per-level BFS push/pull spread
  graphct trace histo <trace.jsonl> [--name H] list histograms (name, count,
                                               p50/p99); --name H shows the
                                               detailed ASCII chart
  graphct trace diff <a.jsonl> <b.jsonl>       A/B span + counter deltas
  graphct trace profdiff <a.folded> <b.folded> compare two folded profile
                                               dumps (signed self-time deltas)
  graphct trace promcheck <metrics.txt>        validate Prometheus exposition
  graphct help

BFS tuning (stats, bc): --frontier is one of queue|bitmap|push|pull|hybrid
(default hybrid); --alpha / --beta set the direction-optimizing switch
thresholds (push->pull when frontier edges exceed unexplored/alpha,
pull->push when the frontier shrinks below vertices/beta).

Locality (stats, components, bc, triangles): --reorder relabels vertices
before the kernels run — none (default) | degree (hubs first) | rcm
(BFS bandwidth reduction) | shuffle (randomized baseline).  All output
is reported in the original vertex ids; only the in-memory layout
changes.  Degree ordering also tightens the triangle counter's forward
orientation, so it is a genuine speedup there, not just a cache effect.

Batched traversal (stats, bc): --batch K runs BFS sources through the
bit-parallel multi-source engine, K sources (max 64) per adjacency
scan.  stats defaults to 64; bc defaults to 1 (classic per-source
Brandes) since the batched forward pass stores all source distances.
Results are identical at every K.

Storage backends (stats, components, bc, triangles): --backend selects how the
graph is held while the kernels run — plain (default, heap CSR) | mmap
(zero-copy view over a format-v2 .bin file; see `graphct convert`) |
compressed (delta-encoded varint adjacency, decoded on the fly).
Results are identical across backends; betweenness materializes a heap
CSR first.  --reorder requires --backend plain.  stats also reports
backend memory observability: mincore(2) page residency before/after
traversal for mmap, decode-work counters for compressed, RSS for both
(exported as gauges — graphct_mmap_resident_bytes etc. — under
--trace).

Telemetry (any command): --trace turns on kernel telemetry and prints a
hierarchical timing summary to stderr at exit; --trace-out FILE streams
JSON-lines events to FILE; --metrics-format json|prom|summary selects
the export (json requires --trace-out; prom writes Prometheus text to
--trace-out or stdout; summary writes to --trace-out when given, else
stderr).

Profiling (stats, components, bc): --profile turns on the continuous
wall-clock sampler and prints an ASCII flamegraph to stderr at exit;
--profile-hz HZ overrides the default 97 Hz rate; --profile-out FILE
also writes the raw folded stacks (speedscope / flamegraph.pl /
`trace profdiff` input) to FILE.  `graphct serve` samples continuously
by default and exposes the live folded stacks at /profile (plain text
for flamegraph.pl/speedscope; ?format=json, ?format=top variants);
--profile-hz 0 disables.

Graph files: *.bin = GraphCT binary CSR, *.gr/*.dimacs = DIMACS,
anything else = 'src dst' edge-list text.";

/// Printed by `graphct serve --help` and appended to the global help.
const SERVE_USAGE: &str = "graphct serve — live monitoring + query plane

USAGE:
  graphct serve [--profile h1n1|atlflood|sep1] [--scale-pct P] [--seed N]
                [--port P | --addr HOST:PORT] [--batch-size N] [--batches N]
                [--interval-ms MS] [--window N] [--trace-out FILE]
                [--stall-timeout-ms MS] [--profile-hz HZ]
                [--snapshot-every N] [--query-threads N] [--topk K]

The ingest loop freezes an epoch-tagged CSR snapshot every
--snapshot-every batches (default 8; 0 = on demand only); queries answer
from the latest freeze on --query-threads workers (default 2) and wrap
every response in the versioned envelope
{\"v\":1,\"epoch\":E,\"staleness_s\":S,\"data\":...|\"error\":...}.

  GET /metrics                        Prometheus exposition (live)
  GET /healthz                        200 ok | 503 stalled/draining
  GET /progress                       JSON span stacks, progress, ETAs
  GET /profile[?format=json|top]      live folded stacks
  GET /pause, /resume                 freeze/unfreeze ingest (stall test)
  GET /v1/query/topk[?k=K&samples=N]  top-k influencers by sampled
                                      betweenness on the frozen epoch
                                      (k defaults to --topk)
  GET /v1/query/component?vertex=V|user=NAME
                                      component id + size
  GET /v1/query/degree?vertex=V|user=NAME
                                      degree and reach (component - 1)
  GET /v1/query/ego?vertex=V|user=NAME
                                      one-hop ego net, induced edges
  GET /v1/snapshot                    current freeze metadata
  GET /v1/snapshot/refresh            request a fresh freeze next batch";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pull `--flag value` out of an argument list. A flag present without
/// a following value is an error, not an absent flag.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == flag) else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err(format!("{flag} requires a value"));
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(value))
}

fn parse_flag<T: std::str::FromStr>(
    args: &mut Vec<String>,
    flag: &str,
    default: T,
) -> Result<T, String> {
    match take_flag(args, flag)? {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {flag}: {v}")),
    }
}

fn require_flag<T: std::str::FromStr>(args: &mut Vec<String>, flag: &str) -> Result<T, String> {
    take_flag(args, flag)?
        .ok_or_else(|| format!("missing required flag {flag}"))?
        .parse()
        .map_err(|_| format!("invalid value for {flag}"))
}

/// Parse the shared BFS direction-optimization flags
/// (`--frontier`, `--alpha`, `--beta`) into a [`BfsConfig`].
fn parse_bfs_flags(args: &mut Vec<String>) -> Result<graphct_kernels::BfsConfig, String> {
    let kind: graphct_kernels::FrontierKind =
        parse_flag(args, "--frontier", graphct_kernels::FrontierKind::Hybrid)?;
    let mut config = graphct_kernels::BfsConfig::from_kind(kind);
    config.alpha = parse_flag(args, "--alpha", config.alpha)?;
    config.beta = parse_flag(args, "--beta", config.beta)?;
    if config.alpha <= 0.0 || config.beta <= 0.0 {
        return Err("--alpha and --beta must be positive".into());
    }
    Ok(config)
}

/// Consume `--reorder`: which locality pass to run before the kernels.
/// The caller builds a [`graphct_core::ReorderedView`] from the loaded
/// graph, runs the kernels on `view.graph()`, and maps results back to
/// original vertex ids through the view before printing.
fn parse_reorder_flag(args: &mut Vec<String>) -> Result<graphct_core::ReorderKind, String> {
    match take_flag(args, "--reorder")? {
        None => Ok(graphct_core::ReorderKind::None),
        Some(v) => v.parse(),
    }
}

/// Consume the telemetry flags (`--trace`, `--trace-out`,
/// `--metrics-format`) and start a [`graphct_trace::Session`] when any
/// of them asks for one.  The returned guard flushes the chosen sink on
/// drop, after the command has produced its output.
fn start_trace(args: &mut Vec<String>) -> Result<Option<graphct_trace::Session>, String> {
    let trace = if let Some(pos) = args.iter().position(|a| a == "--trace") {
        args.remove(pos);
        true
    } else {
        false
    };
    let trace_out = take_flag(args, "--trace-out")?.map(PathBuf::from);
    let format = take_flag(args, "--metrics-format")?;
    if !trace && trace_out.is_none() && format.is_none() {
        return Ok(None);
    }
    // --trace-out with no explicit format means JSON-lines; bare --trace
    // means the human-readable summary.
    let format = format.unwrap_or_else(|| {
        if trace_out.is_some() {
            "json".to_string()
        } else {
            "summary".to_string()
        }
    });
    let sink: Arc<dyn graphct_trace::Sink> = match format.as_str() {
        "json" => {
            let path = trace_out
                .as_ref()
                .ok_or("--metrics-format json requires --trace-out FILE")?;
            Arc::new(
                graphct_trace::JsonLinesSink::create(path)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
            )
        }
        "prom" => match trace_out.as_ref() {
            Some(path) => Arc::new(
                graphct_trace::PrometheusSink::create(path)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
            ),
            None => Arc::new(graphct_trace::PrometheusSink::to_stdout()),
        },
        "summary" => match trace_out.as_ref() {
            Some(path) => Arc::new(
                graphct_trace::SummarySink::create(path)
                    .map_err(|e| format!("cannot create {}: {e}", path.display()))?,
            ),
            None => Arc::new(graphct_trace::SummarySink::to_stderr()),
        },
        other => {
            return Err(format!(
                "unknown --metrics-format '{other}' (json|prom|summary)"
            ))
        }
    };
    Ok(Some(graphct_trace::Session::start(sink)))
}

/// Stops the continuous profiler when the command finishes and prints
/// the ASCII flamegraph (stderr, like the `--trace` summary).  A Drop
/// guard so early error returns still stop the sampler thread.
struct ProfilerGuard {
    out: Option<PathBuf>,
    /// The fallback [`NullSink`](graphct_trace::NullSink) session when
    /// the user profiled without `--trace`.  Held here so it outlives
    /// the flamegraph print (Drop bodies run before fields drop).
    _session: Option<graphct_trace::Session>,
}

impl Drop for ProfilerGuard {
    fn drop(&mut self) {
        let prof = graphct_trace::profiler();
        prof.stop();
        let folded = prof.fold();
        eprintln!(
            "continuous profile: {} samples at {} Hz ({} truncated)",
            prof.samples_total(),
            prof.hz(),
            prof.truncated_total()
        );
        eprint!(
            "{}",
            graphct_trace::analyze::render_ascii_flame(&folded, 60)
        );
        if let Some(path) = &self.out {
            let text = graphct_trace::profile::render_folded_counts(&folded);
            match std::fs::write(path, &text) {
                Ok(()) => eprintln!("wrote {} folded stacks to {}", folded.len(), path.display()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
    }
}

/// Consume the profiler flags (`--profile`, `--profile-hz`,
/// `--profile-out`) and start the continuous wall-clock sampler when
/// any of them asks for one.  Shadow stacks only record open spans
/// while a trace session is enabled, so when the user asked for a
/// profile without `--trace` the caller starts a [`NullSink`] session
/// (counters and shadow frames, no event stream).
fn start_profiler(
    args: &mut Vec<String>,
    have_session: bool,
) -> Result<Option<ProfilerGuard>, String> {
    let switch = if let Some(pos) = args.iter().position(|a| a == "--profile") {
        args.remove(pos);
        true
    } else {
        false
    };
    let hz: Option<u32> = match take_flag(args, "--profile-hz")? {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid value for --profile-hz: {v}"))?,
        ),
    };
    let out = take_flag(args, "--profile-out")?.map(PathBuf::from);
    if !switch && hz.is_none() && out.is_none() {
        return Ok(None);
    }
    let hz = hz.unwrap_or(graphct_trace::profile::DEFAULT_HZ);
    if hz == 0 {
        return Err("--profile-hz must be positive (omit --profile to disable)".into());
    }
    let session = if have_session {
        None
    } else {
        Some(graphct_trace::Session::start(Arc::new(
            graphct_trace::NullSink,
        )))
    };
    graphct_trace::profiler().start(hz);
    Ok(Some(ProfilerGuard {
        out,
        _session: session,
    }))
}

/// Resolve a tweet dataset profile by name, with optional percentage
/// scaling (shared by `tweets` and `serve`).
fn parse_profile(name: &str, scale_pct: f64) -> Result<graphct_twitter::DatasetProfile, String> {
    let profile = match name {
        "h1n1" => graphct_twitter::DatasetProfile::h1n1(),
        "atlflood" => graphct_twitter::DatasetProfile::atlflood(),
        "sep1" => graphct_twitter::DatasetProfile::sep1(),
        other => return Err(format!("unknown profile '{other}'")),
    };
    Ok(if scale_pct < 100.0 {
        profile.scaled(scale_pct / 100.0)
    } else {
        profile
    })
}

/// `graphct serve`: run the live monitoring plane until the batch budget
/// is exhausted or SIGINT asks for a drain.
fn serve_cmd(args: &mut Vec<String>) -> Result<(), String> {
    if args
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        println!("{SERVE_USAGE}");
        return Ok(());
    }
    let profile_name = take_flag(args, "--profile")?.unwrap_or_else(|| "atlflood".into());
    let scale_pct: f64 = parse_flag(args, "--scale-pct", 100.0)?;
    let profile = parse_profile(&profile_name, scale_pct)?;
    let seed: u64 = parse_flag(args, "--seed", 42)?;
    let port: u16 = parse_flag(args, "--port", 9090)?;
    let addr = take_flag(args, "--addr")?.unwrap_or_else(|| format!("127.0.0.1:{port}"));
    let batch_size: usize = parse_flag(args, "--batch-size", 64)?;
    let batches: u64 = parse_flag(args, "--batches", 0)?;
    let interval_ms: u64 = parse_flag(args, "--interval-ms", 50)?;
    let window_batches: usize = parse_flag(args, "--window", 256)?;
    let trace_out = take_flag(args, "--trace-out")?.map(PathBuf::from);
    let stall_timeout_ms: u64 = parse_flag(args, "--stall-timeout-ms", 10_000)?;
    let profile_hz: u32 = parse_flag(args, "--profile-hz", graphct_trace::profile::DEFAULT_HZ)?;
    let snapshot_every: u64 = parse_flag(args, "--snapshot-every", 8)?;
    let query_threads: usize = parse_flag(args, "--query-threads", 2)?;
    let topk: usize = parse_flag(args, "--topk", 10)?;

    graphct_obs::install_sigint_handler();
    let handle = graphct_obs::start(graphct_obs::ServeConfig {
        addr: addr.clone(),
        profile,
        seed,
        batch_size,
        batches,
        interval_ms,
        window_batches,
        trace_out,
        stall_timeout_ms,
        profile_hz,
        snapshot_every,
        query_threads,
        topk,
    })
    .map_err(|e| format!("cannot serve on {addr}: {e}"))?;
    println!(
        "serving http://{}  endpoints: /metrics /healthz /progress /profile /pause /resume \
         /v1/query/{{topk,component,degree,ego}} /v1/snapshot /v1/snapshot/refresh",
        handle.local_addr()
    );
    println!(
        "ingesting {profile_name} (seed {seed}): batch {batch_size} mentions every {interval_ms}ms, \
         sliding window {window_batches} batches{}",
        if batches == 0 {
            ", endless (Ctrl-C to drain)".to_string()
        } else {
            format!(", {batches} batches")
        }
    );
    while !graphct_obs::sigint_received() && !handle.ingest_finished() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    if graphct_obs::sigint_received() {
        eprintln!("SIGINT: draining...");
    }
    let stats = handle.wait();
    println!(
        "drained: {} batches, {} mentions, {} edges inserted, {} expired, {} errors",
        stats.batches,
        stats.mentions,
        stats.edges_inserted,
        stats.edges_expired,
        stats.ingest_errors
    );
    Ok(())
}

/// Read and parse a JSON-lines trace produced by `--trace-out`.
fn load_trace(path: &Path) -> Result<Vec<graphct_trace::analyze::Rec>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    graphct_trace::analyze::read_trace(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn next_path(args: &mut Vec<String>, what: &str) -> Result<PathBuf, String> {
    if args.is_empty() {
        return Err(format!("missing {what}"));
    }
    Ok(PathBuf::from(args.remove(0)))
}

/// `graphct trace`: offline analysis of recorded traces.
fn trace_cmd(args: &mut Vec<String>) -> Result<(), String> {
    use graphct_trace::analyze;
    if args.is_empty() {
        return Err(
            "trace needs a subcommand (flame|critical-path|imbalance|histo|diff|profdiff|promcheck)"
                .into(),
        );
    }
    let sub = args.remove(0);
    match sub.as_str() {
        "flame" => {
            let file = next_path(args, "trace file")?;
            let out = take_flag(args, "--out")?.map(PathBuf::from);
            let folded = analyze::fold_stacks(&load_trace(&file)?);
            let text = analyze::render_folded(&folded);
            match out {
                Some(path) => {
                    std::fs::write(&path, &text)
                        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                    println!("wrote {} folded stacks to {}", folded.len(), path.display());
                }
                None => print!("{text}"),
            }
            Ok(())
        }
        "critical-path" => {
            let file = next_path(args, "trace file")?;
            let chains = analyze::critical_paths(&load_trace(&file)?);
            if chains.is_empty() {
                println!("no spans in trace");
                return Ok(());
            }
            for chain in &chains {
                let root_ns = chain[0].elapsed_ns.max(1);
                for (depth, node) in chain.iter().enumerate() {
                    println!(
                        "{:indent$}{}  {:.3}ms  ({:.1}% of {})",
                        "",
                        node.name,
                        node.elapsed_ns as f64 / 1e6,
                        100.0 * node.elapsed_ns as f64 / root_ns as f64,
                        chain[0].name,
                        indent = depth * 2
                    );
                }
            }
            Ok(())
        }
        "imbalance" => {
            let file = next_path(args, "trace file")?;
            let report = analyze::level_imbalance(&load_trace(&file)?);
            if report.dirs.is_empty() {
                println!("no bfs_level telemetry in trace (run with --trace-out)");
                return Ok(());
            }
            println!("{} BFS runs", report.runs);
            println!(
                "{:<8} {:>7} {:>14} {:>14} {:>14} {:>8}",
                "dir", "levels", "edges", "max/level", "mean/level", "spread"
            );
            for d in &report.dirs {
                println!(
                    "{:<8} {:>7} {:>14} {:>14} {:>14.1} {:>8.2}",
                    d.direction, d.levels, d.total_edges, d.max_edges, d.mean_edges, d.spread
                );
            }
            println!("heaviest levels:");
            for (level, dir, edges) in &report.heaviest {
                println!("  level {level:<4} {dir:<6} {edges} edges inspected");
            }
            Ok(())
        }
        "histo" => {
            let file = next_path(args, "trace file")?;
            let name = take_flag(args, "--name")?;
            let mut reports = analyze::collect_histograms(&load_trace(&file)?);
            if let Some(name) = &name {
                reports.retain(|r| &r.name == name);
                if reports.is_empty() {
                    return Err(format!("no histogram named '{name}' in trace"));
                }
            }
            if reports.is_empty() {
                println!("no histogram records in trace (run with --trace-out)");
                return Ok(());
            }
            if name.is_none() {
                // Inventory view: one line per histogram family, so the
                // reader learns what is in the trace before drilling in
                // with --name.
                println!(
                    "{:<28} {:>10} {:>12} {:>12}",
                    "histogram", "count", "p50", "p99"
                );
                for report in &reports {
                    println!(
                        "{:<28} {:>10} {:>12.0} {:>12.0}",
                        report.name,
                        report.count(),
                        report.quantile(0.5),
                        report.quantile(0.99)
                    );
                }
                return Ok(());
            }
            for report in &reports {
                let count = report.count();
                println!(
                    "{}: {} observations over {} record(s), sum {}",
                    report.name, count, report.records, report.sum
                );
                println!(
                    "  p50 {:.0}  p90 {:.0}  p99 {:.0}  p999 {:.0}",
                    report.quantile(0.5),
                    report.quantile(0.9),
                    report.quantile(0.99),
                    report.quantile(0.999)
                );
                let peak = report.counts.iter().copied().max().unwrap_or(0).max(1);
                for (i, &c) in report.counts.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    let bar = "#".repeat(((c as f64 / peak as f64) * 40.0).ceil() as usize);
                    println!("  >= {:>12}  {:>10}  {bar}", report.edges[i], c);
                }
            }
            Ok(())
        }
        "diff" => {
            let a_path = next_path(args, "baseline trace")?;
            let b_path = next_path(args, "comparison trace")?;
            let a = load_trace(&a_path)?;
            let b = load_trace(&b_path)?;
            let rows = analyze::diff_spans(&a, &b);
            if rows.is_empty() {
                println!("no spans in either trace");
            } else {
                println!(
                    "{:<24} {:>8} {:>8} {:>12} {:>12} {:>9}",
                    "span", "a_count", "b_count", "a_ms", "b_ms", "delta"
                );
                for row in &rows {
                    let pct = row
                        .delta_pct()
                        .map(|p| format!("{p:+.1}%"))
                        .unwrap_or_else(|| "new".into());
                    println!(
                        "{:<24} {:>8} {:>8} {:>12.3} {:>12.3} {:>9}",
                        row.name,
                        row.a_count,
                        row.b_count,
                        row.a_total_ns as f64 / 1e6,
                        row.b_total_ns as f64 / 1e6,
                        pct
                    );
                }
            }
            let counters = analyze::diff_counters(&a, &b);
            if !counters.is_empty() {
                println!("counters:");
                for c in &counters {
                    let fmt =
                        |v: Option<u64>| v.map(|n| n.to_string()).unwrap_or_else(|| "-".into());
                    println!("  {:<32} {:>14} -> {:<14}", c.name, fmt(c.a), fmt(c.b));
                }
            }
            Ok(())
        }
        "profdiff" => {
            let a_path = next_path(args, "baseline folded dump")?;
            let b_path = next_path(args, "comparison folded dump")?;
            let load_folded = |path: &Path| -> Result<Vec<(String, u64)>, String> {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
                analyze::parse_folded(&text).map_err(|e| format!("{}: {e}", path.display()))
            };
            let a = load_folded(&a_path)?;
            let b = load_folded(&b_path)?;
            let rows = analyze::diff_folded(&a, &b);
            if rows.is_empty() {
                println!("no samples in either dump");
                return Ok(());
            }
            println!(
                "{:<32} {:>10} {:>10} {:>10} {:>9}",
                "frame (self samples)", "a", "b", "delta", "pct"
            );
            for row in &rows {
                let pct = row
                    .delta_pct()
                    .map(|p| format!("{p:+.1}%"))
                    .unwrap_or_else(|| "new".into());
                println!(
                    "{:<32} {:>10} {:>10} {:>+10} {:>9}",
                    row.frame,
                    row.a_count,
                    row.b_count,
                    row.delta(),
                    pct
                );
            }
            Ok(())
        }
        "promcheck" => {
            let file = next_path(args, "exposition file")?;
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            match graphct_trace::schema::validate_exposition(&text) {
                Ok(samples) => {
                    println!("ok: {} ({samples} samples)", file.display());
                    Ok(())
                }
                Err((line, msg)) => Err(format!("{}:{line}: {msg}", file.display())),
            }
        }
        other => Err(format!(
            "unknown trace subcommand '{other}' \
             (flame|critical-path|imbalance|histo|diff|profdiff|promcheck)"
        )),
    }
}

fn load_graph(path: &Path) -> Result<CsrGraph, String> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let graph = match ext {
        "bin" => graphct_core::io::binary::load(path).map_err(|e| e.to_string())?,
        "gr" | "dimacs" => {
            let parsed = graphct_core::io::dimacs::read_file(path).map_err(|e| e.to_string())?;
            graphct_core::GraphBuilder::undirected()
                .num_vertices(parsed.num_vertices)
                .build(&parsed.edges)
                .map_err(|e| e.to_string())?
        }
        _ => {
            let edges = graphct_core::io::edges_text::read_file(path).map_err(|e| e.to_string())?;
            build_undirected_simple(&edges).map_err(|e| e.to_string())?
        }
    };
    Ok(graph)
}

/// Load a graph keeping arc direction: each `src dst` line of an edge
/// list (and each DIMACS arc) is one directed arc.  `.bin` files carry
/// their own direction flag and load as stored.  The triad census needs
/// this — [`load_graph`] symmetrizes, which would collapse every census
/// onto the three undirected classes.
fn load_directed_graph(path: &Path) -> Result<CsrGraph, String> {
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let graph = match ext {
        "bin" => graphct_core::io::binary::load(path).map_err(|e| e.to_string())?,
        "gr" | "dimacs" => {
            let parsed = graphct_core::io::dimacs::read_file(path).map_err(|e| e.to_string())?;
            graphct_core::GraphBuilder::directed()
                .num_vertices(parsed.num_vertices)
                .build(&parsed.edges)
                .map_err(|e| e.to_string())?
        }
        _ => {
            let edges = graphct_core::io::edges_text::read_file(path).map_err(|e| e.to_string())?;
            graphct_core::builder::build_directed_simple(&edges).map_err(|e| e.to_string())?
        }
    };
    Ok(graph)
}

fn write_edges(path: &Path, edges: &EdgeList) -> Result<(), String> {
    graphct_core::io::edges_text::write_file(path, edges).map_err(|e| e.to_string())
}

/// Which storage backend holds the graph while kernels run.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Backend {
    Plain,
    Mmap,
    Compressed,
}

fn parse_backend_flag(args: &mut Vec<String>) -> Result<Backend, String> {
    match take_flag(args, "--backend")?.as_deref() {
        None | Some("plain") => Ok(Backend::Plain),
        Some("mmap") => Ok(Backend::Mmap),
        Some("compressed") => Ok(Backend::Compressed),
        Some(other) => Err(format!(
            "unknown --backend '{other}' (plain|mmap|compressed)"
        )),
    }
}

/// A graph loaded through one of the storage backends.
enum BackendGraph {
    Plain(CsrGraph),
    Mapped(MmapCsr),
    Compressed(CompressedCsr),
}

fn load_backend(path: &Path, backend: Backend) -> Result<BackendGraph, String> {
    Ok(match backend {
        Backend::Plain => BackendGraph::Plain(load_graph(path)?),
        Backend::Mmap => {
            if path.extension().and_then(|e| e.to_str()) != Some("bin") {
                return Err(
                    "--backend mmap needs a format-v2 .bin graph (rewrite with `graphct convert`)"
                        .into(),
                );
            }
            BackendGraph::Mapped(MmapCsr::open(path).map_err(|e| e.to_string())?)
        }
        Backend::Compressed => {
            let g = load_graph(path)?;
            BackendGraph::Compressed(CompressedCsr::from_view(&g))
        }
    })
}

impl BackendGraph {
    fn num_vertices(&self) -> usize {
        match self {
            BackendGraph::Plain(g) => g.num_vertices(),
            BackendGraph::Mapped(m) => m.num_vertices(),
            BackendGraph::Compressed(c) => c.num_vertices(),
        }
    }

    fn num_edges(&self) -> usize {
        match self {
            BackendGraph::Plain(g) => g.num_edges(),
            BackendGraph::Mapped(m) => m.num_edges(),
            BackendGraph::Compressed(c) => c.num_edges(),
        }
    }

    /// One-line description of the non-default backends for the report
    /// header (`None` for plain).
    fn describe(&self) -> Option<String> {
        match self {
            BackendGraph::Plain(_) => None,
            BackendGraph::Mapped(m) => Some(format!(
                "backend: mmap ({} bytes served zero-copy from the page cache)",
                m.file_bytes()
            )),
            BackendGraph::Compressed(c) => Some(format!(
                "backend: compressed ({:.2} B/arc vs 4 plain)",
                c.bytes_per_arc()
            )),
        }
    }

    /// Materialize a heap CSR (for kernels that are not yet generic
    /// over `GraphView`, e.g. betweenness and the diameter estimator).
    fn to_plain(&self) -> CsrGraph {
        match self {
            BackendGraph::Plain(g) => g.clone(),
            BackendGraph::Mapped(m) => m.to_csr_graph(),
            BackendGraph::Compressed(c) => c.to_csr(),
        }
    }
}

/// Σ d(d−1)/2 over a view — the wedge count that normalizes global
/// transitivity.  `triangle_stats` computes this as a byproduct on heap
/// CSRs; the mmap/compressed paths recount it here.
fn wedge_count<G: GraphView>(graph: &G) -> usize {
    (0..graph.num_vertices() as u32)
        .map(|v| {
            let d = graph.degree(v);
            d * (d.saturating_sub(1)) / 2
        })
        .sum()
}

/// Shared body of `graphct stats`: degree and component summaries run
/// straight off the backend view; the diameter estimator (MS-BFS based,
/// still CSR-only) runs on `diameter_csr`.
fn stats_report<G: GraphView>(
    work: &G,
    diameter_csr: &CsrGraph,
    bfs: &graphct_kernels::BfsConfig,
    batch: usize,
    note: Option<String>,
) {
    println!(
        "vertices {}  edges {}  directed {}",
        work.num_vertices(),
        work.num_edges(),
        work.is_directed()
    );
    if let Some(note) = note {
        println!("{note}");
    }
    let d = graphct_kernels::degree_statistics(work);
    println!(
        "degrees: mean {:.4} variance {:.4} max {} min {}",
        d.mean, d.variance, d.max, d.min
    );
    let comps = graphct_kernels::components::ComponentSummary::compute(work);
    println!(
        "components: {} (largest {})",
        comps.num_components(),
        comps.largest_size()
    );
    let dia = graphct_kernels::diameter::estimate_diameter_batched(
        diameter_csr,
        graphct_kernels::diameter::DEFAULT_SAMPLES,
        graphct_kernels::diameter::DEFAULT_MULTIPLIER,
        0,
        bfs,
        batch,
    );
    println!(
        "diameter estimate {} (longest distance {} over {} sources, {:?} frontier, batch {})",
        dia.estimate,
        dia.max_distance_found,
        dia.samples,
        bfs.frontier,
        batch.clamp(1, graphct_kernels::MAX_BATCH)
    );
}

/// Backend memory observability line for `graphct stats`: the backend
/// detail plus process RSS.  `sample_rss` also publishes the
/// `rss_bytes` gauge when a trace session is live.
fn print_memory_line(detail: &str) {
    let rss = graphct_core::MemoryProbe::sample_rss()
        .map(|b| format!("rss {b} B; "))
        .unwrap_or_default();
    println!("memory: {rss}{detail}");
}

fn run(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    if args.is_empty() {
        println!("{USAGE}\n\n{SERVE_USAGE}");
        return Ok(());
    }
    let cmd = args.remove(0);
    // `serve` owns its own trace session (the ingest thread starts it and
    // drains it on shutdown) and gives --trace-out a different meaning,
    // so it is dispatched before the shared telemetry flags are consumed.
    // `trace` *reads* trace files; tracing the reader would be noise.
    if cmd == "serve" {
        return serve_cmd(&mut args);
    }
    if cmd == "trace" {
        return trace_cmd(&mut args);
    }
    let _trace_session = start_trace(&mut args)?;
    let _profiler_guard = start_profiler(&mut args, _trace_session.is_some())?;
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            println!("{USAGE}\n\n{SERVE_USAGE}");
            Ok(())
        }
        "script" => {
            if args.is_empty() {
                return Err("script needs a file".into());
            }
            let file = PathBuf::from(args.remove(0));
            let base_dir = take_flag(&mut args, "--base-dir")?
                .map(PathBuf::from)
                .or_else(|| file.parent().map(Path::to_path_buf))
                .unwrap_or_else(|| PathBuf::from("."));
            let text = std::fs::read_to_string(&file)
                .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
            let mut engine = graphct_script::Engine::new();
            engine.base_dir = base_dir;
            engine.run_script(&text).map_err(|e| e.to_string())?;
            for line in &engine.output {
                println!("{line}");
            }
            Ok(())
        }
        "gen" => {
            if args.is_empty() {
                return Err("gen needs a generator (rmat|er|ba)".into());
            }
            let kind = args.remove(0);
            let seed: u64 = parse_flag(&mut args, "--seed", 0)?;
            let out: PathBuf = require_flag(&mut args, "--out")?;
            let edges = match kind.as_str() {
                "rmat" => {
                    let scale: u32 = require_flag(&mut args, "--scale")?;
                    let edge_factor: usize = parse_flag(&mut args, "--edge-factor", 16)?;
                    graphct_gen::rmat_edges(
                        &graphct_gen::RmatConfig::paper(scale, edge_factor),
                        seed,
                    )
                }
                "er" => {
                    let n: usize = require_flag(&mut args, "--vertices")?;
                    let m: usize = require_flag(&mut args, "--edges")?;
                    graphct_gen::gnm(n, m, seed)
                }
                "ba" => {
                    let n: usize = require_flag(&mut args, "--vertices")?;
                    let m: usize = parse_flag(&mut args, "--attach", 2)?;
                    graphct_gen::preferential_attachment(n, m, seed)
                }
                other => return Err(format!("unknown generator '{other}'")),
            };
            write_edges(&out, &edges)?;
            println!("wrote {} edges to {}", edges.len(), out.display());
            Ok(())
        }
        "tweets" => {
            if args.is_empty() {
                return Err("tweets needs a profile (h1n1|atlflood|sep1)".into());
            }
            let which = args.remove(0);
            let seed: u64 = parse_flag(&mut args, "--seed", 42)?;
            let scale_pct: f64 = parse_flag(&mut args, "--scale-pct", 100.0)?;
            let out: PathBuf = require_flag(&mut args, "--out")?;
            let profile = parse_profile(&which, scale_pct)?;
            let (tweets, _pool) = graphct_twitter::generate_stream(&profile.config, seed);
            let tg = graphct_twitter::build_tweet_graph(&tweets).map_err(|e| e.to_string())?;
            let edges: EdgeList = tg.undirected.iter_arcs().filter(|&(s, t)| s < t).collect();
            write_edges(&out, &edges)?;
            println!(
                "profile {}: {} tweets, {} users, {} unique interactions -> {}",
                profile.name,
                tg.num_tweets,
                tg.undirected.num_vertices(),
                tg.undirected.num_edges(),
                out.display()
            );
            Ok(())
        }
        "stats" => {
            if args.is_empty() {
                return Err("stats needs a graph file".into());
            }
            let path = PathBuf::from(args.remove(0));
            let bfs = parse_bfs_flags(&mut args)?;
            let reorder = parse_reorder_flag(&mut args)?;
            let batch: usize = parse_flag(&mut args, "--batch", graphct_kernels::DEFAULT_BATCH)?;
            let backend = parse_backend_flag(&mut args)?;
            if backend != Backend::Plain && reorder != graphct_core::ReorderKind::None {
                return Err("--reorder requires --backend plain".into());
            }
            let bg = load_backend(&path, backend)?;
            match &bg {
                BackendGraph::Plain(graph) => {
                    let view = graphct_core::ReorderedView::apply(graph, reorder, 0);
                    let work = view.as_ref().map_or(graph, |v| v.graph());
                    let note = view
                        .as_ref()
                        .map(|v| format!("reorder: {} pass applied", v.kind()));
                    stats_report(work, work, &bfs, batch, note);
                }
                BackendGraph::Mapped(m) => {
                    let (resident_before, mapped) = m.residency();
                    // The diameter estimator still wants a heap CSR; the
                    // degree/component kernels run off the mapping.
                    let csr = m.to_csr_graph();
                    stats_report(m, &csr, &bfs, batch, bg.describe());
                    // Sampling after the kernels also publishes the
                    // graphct_mmap_*_bytes gauges when tracing is on.
                    let (resident_after, _) = m.sample_residency();
                    print_memory_line(&format!(
                        "mmap resident {resident_before} -> {resident_after} of {mapped} B mapped \
                         (before -> after traversal)"
                    ));
                }
                BackendGraph::Compressed(c) => {
                    let csr = c.to_csr();
                    stats_report(c, &csr, &bfs, batch, bg.describe());
                    print_memory_line(&format!(
                        "decode work: {} varints, {} B touched, {} blocks ({} re-decoded)",
                        graphct_core::compressed::COMPRESSED_VARINTS_DECODED.value(),
                        graphct_core::compressed::COMPRESSED_BYTES_TOUCHED.value(),
                        graphct_core::compressed::COMPRESSED_BLOCKS_DECODED.value(),
                        graphct_core::compressed::COMPRESSED_BLOCKS_REDECODED.value(),
                    ));
                }
            }
            Ok(())
        }
        "components" => {
            if args.is_empty() {
                return Err("components needs a graph file".into());
            }
            let path = PathBuf::from(args.remove(0));
            let top: usize = parse_flag(&mut args, "--top", 10)?;
            let reorder = parse_reorder_flag(&mut args)?;
            let backend = parse_backend_flag(&mut args)?;
            if backend != Backend::Plain && reorder != graphct_core::ReorderKind::None {
                return Err("--reorder requires --backend plain".into());
            }
            let bg = load_backend(&path, backend)?;
            // Labels are mapped back to original ids so the reported
            // roots are stable across --reorder choices.
            let (colors, note) = match &bg {
                BackendGraph::Plain(graph) => {
                    let view = graphct_core::ReorderedView::apply(graph, reorder, 0);
                    let colors = match &view {
                        Some(v) => {
                            v.restore_colors(&graphct_kernels::connected_components(v.graph()))
                        }
                        None => graphct_kernels::connected_components(graph),
                    };
                    let note = view
                        .as_ref()
                        .map(|v| format!("reorder: {} pass applied", v.kind()));
                    (colors, note)
                }
                BackendGraph::Mapped(m) => {
                    (graphct_kernels::connected_components(m), bg.describe())
                }
                BackendGraph::Compressed(c) => {
                    (graphct_kernels::connected_components(c), bg.describe())
                }
            };
            let comps = graphct_kernels::components::ComponentSummary::from_colors(colors);
            println!(
                "vertices {}  edges {}  components {}",
                bg.num_vertices(),
                bg.num_edges(),
                comps.num_components()
            );
            if let Some(note) = note {
                println!("{note}");
            }
            for rank in 0..top {
                let Some((root, size)) = comps.nth_largest(rank) else {
                    break;
                };
                println!(
                    "{:>4}  component root {:>10}  size {}",
                    rank + 1,
                    root,
                    size
                );
            }
            Ok(())
        }
        "bc" => {
            if args.is_empty() {
                return Err("bc needs a graph file".into());
            }
            let path = PathBuf::from(args.remove(0));
            let samples: usize = parse_flag(&mut args, "--samples", 256)?;
            let seed: u64 = parse_flag(&mut args, "--seed", 0)?;
            let top: usize = parse_flag(&mut args, "--top", 15)?;
            let bfs = parse_bfs_flags(&mut args)?;
            let reorder = parse_reorder_flag(&mut args)?;
            let batch: usize = parse_flag(&mut args, "--batch", 1)?;
            let backend = parse_backend_flag(&mut args)?;
            if backend != Backend::Plain && reorder != graphct_core::ReorderKind::None {
                return Err("--reorder requires --backend plain".into());
            }
            let bg = load_backend(&path, backend)?;
            if let Some(note) = bg.describe() {
                println!("{note}; materialized to a heap CSR for betweenness");
            }
            let graph = match bg {
                BackendGraph::Plain(g) => g,
                other => other.to_plain(),
            };
            let view = graphct_core::ReorderedView::apply(&graph, reorder, seed);
            let work = view.as_ref().map_or(&graph, |v| v.graph());
            let mut config = graphct_kernels::BetweennessConfig::sampled(samples, seed);
            config.bfs = bfs;
            config.batch = batch.max(1);
            let start = std::time::Instant::now();
            let result = graphct_kernels::betweenness_centrality(work, &config)
                .map_err(|e| e.to_string())?;
            let elapsed = start.elapsed();
            // Scores come back indexed by the working (possibly
            // relabeled) ids; report them in original ids.
            let scores = match &view {
                Some(v) => v.restore(&result.scores),
                None => result.scores.clone(),
            };
            println!(
                "betweenness over {} sources in {:.3}s{}{}",
                result.sources.len(),
                elapsed.as_secs_f64(),
                if config.batch > 1 {
                    format!(" (batch {})", config.batch.min(graphct_kernels::MAX_BATCH))
                } else {
                    String::new()
                },
                view.as_ref()
                    .map_or(String::new(), |v| format!(" ({} reorder)", v.kind()))
            );
            for (rank, v) in graphct_metrics::top_k_indices(&scores, top)
                .into_iter()
                .enumerate()
            {
                println!("{:>4}  vertex {:>10}  score {:.2}", rank + 1, v, scores[v]);
            }
            Ok(())
        }
        "triangles" => {
            if args.is_empty() {
                return Err("triangles needs a graph file".into());
            }
            let path = PathBuf::from(args.remove(0));
            let top: usize = parse_flag(&mut args, "--top", 10)?;
            let census = if let Some(pos) = args.iter().position(|a| a == "--census") {
                args.remove(pos);
                true
            } else {
                false
            };
            let reorder = parse_reorder_flag(&mut args)?;
            let backend = parse_backend_flag(&mut args)?;
            if backend != Backend::Plain && reorder != graphct_core::ReorderKind::None {
                return Err("--reorder requires --backend plain".into());
            }
            if census {
                // The census is a pure function of the arc structure, so
                // a relabeling pass can only cost time — reject it
                // instead of silently ignoring the flag.
                if reorder != graphct_core::ReorderKind::None {
                    return Err("--census counts are id-invariant; drop --reorder".into());
                }
                let graph = match backend {
                    // Text / DIMACS inputs keep their arc direction here
                    // (the triangle path symmetrizes instead).
                    Backend::Plain => load_directed_graph(&path)?,
                    _ => {
                        let bg = load_backend(&path, backend)?;
                        if let Some(note) = bg.describe() {
                            println!("{note}; materialized to a heap CSR for the census");
                        }
                        bg.to_plain()
                    }
                };
                let start = std::time::Instant::now();
                let counts = graphct_kernels::triad_census(&graph).map_err(|e| e.to_string())?;
                let elapsed = start.elapsed();
                println!(
                    "vertices {}  arcs {}  triples {}",
                    graph.num_vertices(),
                    graph.num_arcs(),
                    counts.iter().sum::<u64>()
                );
                println!("triad census in {:.3}s", elapsed.as_secs_f64());
                for (name, count) in graphct_kernels::TRIAD_CLASSES.iter().zip(counts) {
                    println!("{name:>6}  {count}");
                }
                return Ok(());
            }
            let bg = load_backend(&path, backend)?;
            let mut note = bg.describe();
            // Counts are restored to original ids, so the report is
            // stable across --reorder choices; only the timing moves.
            let (per_vertex, total, wedges, elapsed) = match &bg {
                BackendGraph::Plain(graph) => {
                    let view = graphct_core::ReorderedView::apply(graph, reorder, 0);
                    let work = view.as_ref().map_or(graph, |v| v.graph());
                    let start = std::time::Instant::now();
                    let stats = graphct_kernels::triangle_stats(work).map_err(|e| e.to_string())?;
                    let elapsed = start.elapsed();
                    if let Some(v) = &view {
                        note = Some(format!("reorder: {} pass applied", v.kind()));
                    }
                    let per_vertex = match &view {
                        Some(v) => v.restore(&stats.per_vertex),
                        None => stats.per_vertex,
                    };
                    (per_vertex, stats.total, stats.wedges, elapsed)
                }
                BackendGraph::Mapped(m) => {
                    let start = std::time::Instant::now();
                    let per_vertex =
                        graphct_kernels::forward_triangle_counts(m).map_err(|e| e.to_string())?;
                    (per_vertex, 0, wedge_count(m), start.elapsed())
                }
                BackendGraph::Compressed(c) => {
                    let start = std::time::Instant::now();
                    let per_vertex =
                        graphct_kernels::forward_triangle_counts(c).map_err(|e| e.to_string())?;
                    (per_vertex, 0, wedge_count(c), start.elapsed())
                }
            };
            let total = if total > 0 {
                total
            } else {
                per_vertex.iter().sum::<usize>() / 3
            };
            let transitivity = if wedges == 0 {
                0.0
            } else {
                3.0 * total as f64 / wedges as f64
            };
            println!("vertices {}  edges {}", bg.num_vertices(), bg.num_edges());
            println!("triangles {total}  wedges {wedges}  transitivity {transitivity:.6}");
            println!("counted in {:.3}s (forward merge)", elapsed.as_secs_f64());
            if let Some(note) = note {
                println!("{note}");
            }
            let scores: Vec<f64> = per_vertex.iter().map(|&t| t as f64).collect();
            for (rank, v) in graphct_metrics::top_k_indices(&scores, top)
                .into_iter()
                .enumerate()
            {
                let d = match &bg {
                    BackendGraph::Plain(g) => g.degree(v as u32),
                    BackendGraph::Mapped(m) => m.degree(v as u32),
                    BackendGraph::Compressed(c) => c.degree(v as u32),
                };
                let coeff = if d < 2 {
                    0.0
                } else {
                    2.0 * per_vertex[v] as f64 / (d * (d - 1)) as f64
                };
                println!(
                    "{:>4}  vertex {:>10}  triangles {:>8}  clustering {:.4}",
                    rank + 1,
                    v,
                    per_vertex[v],
                    coeff
                );
            }
            Ok(())
        }
        "convert" => {
            if args.len() < 2 {
                return Err("convert needs an input graph and an output .bin path".into());
            }
            let input = PathBuf::from(args.remove(0));
            let out = PathBuf::from(args.remove(0));
            let graph = load_graph(&input)?;
            graphct_core::io::binary::save(&graph, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {} vertices, {} arcs to {} (format v2)",
                graph.num_vertices(),
                graph.num_arcs(),
                out.display()
            );
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'graphct help')")),
    }
}
