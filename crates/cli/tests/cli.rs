//! End-to-end tests of the `graphct` binary: generate → stats → bc →
//! script, through the real argv surface.

use std::path::PathBuf;
use std::process::Command;

fn graphct() -> Command {
    Command::new(env!("CARGO_BIN_EXE_graphct"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphct_cli_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = graphct().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("graphct script"));
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let out = graphct().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = graphct().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_stats_bc_pipeline() {
    let dir = temp_dir("pipeline");
    let edges = dir.join("rmat.txt");

    let out = graphct()
        .args([
            "gen",
            "rmat",
            "--scale",
            "8",
            "--edge-factor",
            "4",
            "--seed",
            "1",
            "--out",
        ])
        .arg(&edges)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(edges.exists());

    let out = graphct().arg("stats").arg(&edges).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vertices"));
    assert!(text.contains("components:"));
    assert!(text.contains("diameter estimate"));

    let out = graphct()
        .arg("bc")
        .arg(&edges)
        .args(["--samples", "16", "--top", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("betweenness over 16 sources"));
    assert_eq!(text.lines().filter(|l| l.contains("vertex")).count(), 3);
}

#[test]
fn tweets_profile_generates_edge_list() {
    let dir = temp_dir("tweets");
    let out_file = dir.join("atl.txt");
    let out = graphct()
        .args(["tweets", "atlflood", "--scale-pct", "20", "--out"])
        .arg(&out_file)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("profile #atlflood"));
    assert!(out_file.exists());
}

#[test]
fn script_subcommand_runs_paper_script() {
    let dir = temp_dir("script");
    // A small DIMACS file plus a script referencing it relatively.
    let edges = graphct_core::EdgeList::from_pairs(vec![(0, 1), (1, 2), (3, 4)]);
    graphct_core::io::dimacs::write_file(dir.join("g.gr"), 5, &edges).unwrap();
    std::fs::write(
        dir.join("analysis.gct"),
        "read dimacs g.gr\nprint components\nextract component 1\nprint degrees\n",
    )
    .unwrap();

    let out = graphct()
        .arg("script")
        .arg(dir.join("analysis.gct"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("components: 2 total"));
    assert!(text.contains("extracted component 1: 3 vertices"));
}

#[test]
fn gen_requires_out_flag() {
    let out = graphct()
        .args(["gen", "rmat", "--scale", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}
