//! End-to-end tests of the `graphct` binary: generate → stats → bc →
//! script, through the real argv surface.

use std::path::{Path, PathBuf};
use std::process::Command;

fn graphct() -> Command {
    Command::new(env!("CARGO_BIN_EXE_graphct"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("graphct_cli_{tag}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_prints_usage() {
    let out = graphct().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("graphct script"));
}

#[test]
fn no_args_prints_usage_and_succeeds() {
    let out = graphct().output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = graphct().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn gen_stats_bc_pipeline() {
    let dir = temp_dir("pipeline");
    let edges = dir.join("rmat.txt");

    let out = graphct()
        .args([
            "gen",
            "rmat",
            "--scale",
            "8",
            "--edge-factor",
            "4",
            "--seed",
            "1",
            "--out",
        ])
        .arg(&edges)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(edges.exists());

    let out = graphct().arg("stats").arg(&edges).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("vertices"));
    assert!(text.contains("components:"));
    assert!(text.contains("diameter estimate"));

    let out = graphct()
        .arg("bc")
        .arg(&edges)
        .args(["--samples", "16", "--top", "3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("betweenness over 16 sources"));
    assert_eq!(text.lines().filter(|l| l.contains("vertex")).count(), 3);
}

#[test]
fn batch_flag_changes_engine_not_results() {
    let dir = temp_dir("batch");
    let edges = dir.join("rmat.txt");
    let out = graphct()
        .args([
            "gen",
            "rmat",
            "--scale",
            "7",
            "--edge-factor",
            "4",
            "--seed",
            "2",
            "--out",
        ])
        .arg(&edges)
        .output()
        .unwrap();
    assert!(out.status.success());

    // stats: --batch 1 (per-source rayon) and --batch 64 (MS-BFS) must
    // print the same diameter line apart from the batch annotation.
    let diameter_line = |batch: &str| {
        let out = graphct()
            .arg("stats")
            .arg(&edges)
            .args(["--batch", batch])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        let line = text
            .lines()
            .find(|l| l.starts_with("diameter estimate"))
            .unwrap_or_else(|| panic!("no diameter line in {text}"))
            .to_string();
        assert!(line.contains(&format!("batch {batch}")), "{line}");
        line.split(", batch").next().unwrap().to_string()
    };
    assert_eq!(diameter_line("1"), diameter_line("64"));

    // bc: batched forward pass reports the engine and matches scores.
    let bc_out = |extra: &[&str]| {
        let out = graphct()
            .arg("bc")
            .arg(&edges)
            .args(["--samples", "16", "--top", "3", "--seed", "5"])
            .args(extra)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    let classic = bc_out(&[]);
    let batched = bc_out(&["--batch", "64"]);
    assert!(batched.contains("(batch 64)"), "{batched}");
    let scores = |text: &str| {
        text.lines()
            .filter(|l| l.contains("vertex"))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    assert_eq!(scores(&classic), scores(&batched));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tweets_profile_generates_edge_list() {
    let dir = temp_dir("tweets");
    let out_file = dir.join("atl.txt");
    let out = graphct()
        .args(["tweets", "atlflood", "--scale-pct", "20", "--out"])
        .arg(&out_file)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("profile #atlflood"));
    assert!(out_file.exists());
}

#[test]
fn script_subcommand_runs_paper_script() {
    let dir = temp_dir("script");
    // A small DIMACS file plus a script referencing it relatively.
    let edges = graphct_core::EdgeList::from_pairs(vec![(0, 1), (1, 2), (3, 4)]);
    graphct_core::io::dimacs::write_file(dir.join("g.gr"), 5, &edges).unwrap();
    std::fs::write(
        dir.join("analysis.gct"),
        "read dimacs g.gr\nprint components\nextract component 1\nprint degrees\n",
    )
    .unwrap();

    let out = graphct()
        .arg("script")
        .arg(dir.join("analysis.gct"))
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("components: 2 total"));
    assert!(text.contains("extracted component 1: 3 vertices"));
}

/// Write a tiny edge-list graph and return its path.
#[test]
fn triangles_counts_and_census() {
    let dir = temp_dir("triangles");
    let edges = dir.join("diamond.txt");
    // Diamond 0-1-2-3 with chord 1-2, plus a 3-4-5 tail: two triangles.
    std::fs::write(&edges, "0 1\n0 2\n1 2\n1 3\n2 3\n3 4\n4 5\n").unwrap();

    let out = graphct()
        .arg("triangles")
        .arg(&edges)
        .args(["--top", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("triangles 2  wedges 11  transitivity 0.545455"));
    assert_eq!(text.lines().filter(|l| l.contains("vertex")).count(), 2);

    // Relabeling must not change the report (counts restore to the
    // original ids), only the timing/annotation lines.
    let reordered = graphct()
        .arg("triangles")
        .arg(&edges)
        .args(["--top", "2", "--reorder", "degree"])
        .output()
        .unwrap();
    assert!(reordered.status.success());
    let reordered = String::from_utf8_lossy(&reordered.stdout);
    assert!(reordered.contains("reorder: degree pass applied"));
    let ranked = |s: &str| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("vertex"))
            .map(|l| l.to_string())
            .collect()
    };
    assert_eq!(ranked(&text), ranked(&reordered));

    // The census reads the same file as directed arcs: one 030T per
    // chordal triangle, and C(6,3) = 20 triples partitioned in total.
    let census = graphct()
        .arg("triangles")
        .arg(&edges)
        .arg("--census")
        .output()
        .unwrap();
    assert!(
        census.status.success(),
        "{}",
        String::from_utf8_lossy(&census.stderr)
    );
    let census = String::from_utf8_lossy(&census.stdout);
    assert!(census.contains("triples 20"));
    assert!(census.contains("030T  2"));

    let bad = graphct()
        .arg("triangles")
        .arg(&edges)
        .args(["--census", "--reorder", "degree"])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("id-invariant"));
}

fn small_graph(dir: &Path) -> PathBuf {
    let path = dir.join("small.txt");
    std::fs::write(&path, "0 1\n1 2\n2 3\n3 0\n4 5\n").unwrap();
    path
}

#[test]
fn summary_metrics_format_writes_to_file() {
    let dir = temp_dir("summary_file");
    let graph = small_graph(&dir);
    let summary = dir.join("summary.txt");

    let out = graphct()
        .arg("components")
        .arg(&graph)
        .args(["--metrics-format", "summary", "--trace-out"])
        .arg(&summary)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&summary).unwrap();
    assert!(
        text.contains("components"),
        "summary file has the components span:\n{text}"
    );
    // Without --trace-out the summary still lands on stderr.
    let out = graphct()
        .arg("components")
        .arg(&graph)
        .args(["--metrics-format", "summary"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("components"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_flame_round_trips_folded_stacks() {
    let dir = temp_dir("flame");
    let graph = small_graph(&dir);
    let trace = dir.join("trace.jsonl");
    let folded = dir.join("folded.txt");

    let out = graphct()
        .arg("stats")
        .arg(&graph)
        .arg("--trace-out")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = graphct()
        .args(["trace", "flame"])
        .arg(&trace)
        .arg("--out")
        .arg(&folded)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&folded).unwrap();
    // Round-trip: parse the folded file and re-render it byte-identically.
    let stacks = graphct_trace::analyze::parse_folded(&text).unwrap();
    assert!(!stacks.is_empty());
    assert_eq!(graphct_trace::analyze::render_folded(&stacks), text);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_diff_compares_two_runs() {
    let dir = temp_dir("diff");
    let graph = small_graph(&dir);
    let a = dir.join("a.jsonl");
    let b = dir.join("b.jsonl");
    for trace in [&a, &b] {
        let out = graphct()
            .arg("components")
            .arg(&graph)
            .arg("--trace-out")
            .arg(trace)
            .output()
            .unwrap();
        assert!(out.status.success());
    }
    let out = graphct()
        .args(["trace", "diff"])
        .arg(&a)
        .arg(&b)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("components"), "{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_promcheck_validates_prom_export() {
    let dir = temp_dir("promcheck");
    let graph = small_graph(&dir);
    let metrics = dir.join("metrics.txt");
    let out = graphct()
        .arg("components")
        .arg(&graph)
        .args(["--metrics-format", "prom", "--trace-out"])
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = graphct()
        .args(["trace", "promcheck"])
        .arg(&metrics)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("samples"));

    // A malformed exposition fails with the offending line number.
    let bad = dir.join("bad.txt");
    std::fs::write(&bad, "graphct_ok 1\n0bad_name 2\n").unwrap();
    let out = graphct()
        .args(["trace", "promcheck"])
        .arg(&bad)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains(":2:"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_finite_batches_runs_to_drain() {
    let out = graphct()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--profile",
            "atlflood",
            "--scale-pct",
            "5",
            "--seed",
            "3",
            "--batch-size",
            "16",
            "--batches",
            "20",
            "--interval-ms",
            "0",
            "--window",
            "8",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("serving http://127.0.0.1:"), "{text}");
    assert!(text.contains("drained: 20 batches"), "{text}");
}

#[test]
fn gen_requires_out_flag() {
    let out = graphct()
        .args(["gen", "rmat", "--scale", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn profile_flag_prints_flamegraph_and_writes_folded_dump() {
    let dir = temp_dir("profile_flag");
    let edges = dir.join("g.txt");
    let folded = dir.join("prof.folded");

    let out = graphct()
        .args(["gen", "rmat", "--scale", "10", "--seed", "3", "--out"])
        .arg(&edges)
        .output()
        .unwrap();
    assert!(out.status.success());

    // A high sampling rate keeps the run short while still guaranteeing
    // samples land during the kernels.
    let out = graphct()
        .arg("stats")
        .arg(&edges)
        .args(["--profile", "--profile-hz", "997", "--profile-out"])
        .arg(&folded)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("continuous profile:") && err.contains("Hz"),
        "stderr must carry the profile header:\n{err}"
    );
    // The ASCII flame roots at the main thread with a percentage bar.
    assert!(
        err.contains("main") && err.contains("100.0%"),
        "stderr must carry the flamegraph:\n{err}"
    );
    // The folded dump parses and is state-tagged.
    let text = std::fs::read_to_string(&folded).unwrap();
    let total: u64 = text
        .lines()
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert!(total > 0, "dump must contain samples:\n{text}");
    assert!(
        text.lines().all(|l| l.contains(";[cpu] ")
            || l.contains(";[idle] ")
            || l.ends_with("[cpu]")
            || l.ends_with("[idle]")),
        "every stack carries an on/off-CPU leaf:\n{text}"
    );
}

#[test]
fn trace_profdiff_compares_folded_dumps() {
    let dir = temp_dir("profdiff");
    let a = dir.join("a.folded");
    let b = dir.join("b.folded");
    std::fs::write(&a, "main;bfs;[cpu] 10\nmain;bc;[cpu] 5\n").unwrap();
    std::fs::write(
        &b,
        "main;bfs;[cpu] 4\nmain;bc;[cpu] 9\nmain;kcore;[idle] 2\n",
    )
    .unwrap();

    let out = graphct()
        .args(["trace", "profdiff"])
        .arg(&a)
        .arg(&b)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    // Self-time deltas are signed and per-leaf-frame; a frame present
    // only in B reports "new".
    let bfs = text.lines().find(|l| l.starts_with("bfs")).unwrap();
    assert!(bfs.contains("-6") && bfs.contains("-60.0%"), "{text}");
    let bc = text.lines().find(|l| l.starts_with("bc")).unwrap();
    assert!(bc.contains("+4") && bc.contains("+80.0%"), "{text}");
    let kcore = text.lines().find(|l| l.starts_with("kcore")).unwrap();
    assert!(kcore.contains("new"), "{text}");
}

#[test]
fn trace_histo_lists_all_histograms_without_name() {
    let dir = temp_dir("histo_list");
    let edges = dir.join("g.txt");
    let trace = dir.join("t.jsonl");

    let out = graphct()
        .args(["gen", "rmat", "--scale", "8", "--seed", "5", "--out"])
        .arg(&edges)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = graphct()
        .arg("stats")
        .arg(&edges)
        .arg("--trace-out")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success());

    // Bare `trace histo` inventories every histogram in the trace.
    let out = graphct()
        .args(["trace", "histo"])
        .arg(&trace)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("histogram") && text.contains("p50") && text.contains("p99"));
    let listed: Vec<&str> = text
        .lines()
        .skip(1)
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    assert!(!listed.is_empty(), "no histograms listed:\n{text}");

    // --name drills into the detailed chart for one of them.
    let out = graphct()
        .args(["trace", "histo"])
        .arg(&trace)
        .args(["--name", listed[0]])
        .output()
        .unwrap();
    assert!(out.status.success());
    let detail = String::from_utf8_lossy(&out.stdout);
    assert!(detail.contains("observations over"), "{detail}");
    assert!(detail.contains("p999"), "{detail}");
}
