//! Deterministic reference topologies.
//!
//! Known-answer graphs for unit tests, property tests, and bench
//! baselines: their centralities, components, cores, and clustering
//! coefficients have closed forms.

use graphct_core::{EdgeList, VertexId};

/// Path graph `0 – 1 – … – (n-1)`.
pub fn path(n: usize) -> EdgeList {
    (1..n as VertexId).map(|v| (v - 1, v)).collect()
}

/// Cycle over `n ≥ 3` vertices.
///
/// # Panics
/// Panics for `n < 3`.
pub fn cycle(n: usize) -> EdgeList {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    (0..n as VertexId)
        .map(|v| (v, (v + 1) % n as VertexId))
        .collect()
}

/// Star with center `0` and `n - 1` leaves.
pub fn star(n: usize) -> EdgeList {
    (1..n as VertexId).map(|v| (0, v)).collect()
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> EdgeList {
    let mut edges = EdgeList::with_capacity(n * (n - 1) / 2);
    for i in 0..n as VertexId {
        for j in (i + 1)..n as VertexId {
            edges.push(i, j);
        }
    }
    edges
}

/// `rows × cols` grid with 4-neighbor connectivity; vertex `(r, c)` is
/// `r * cols + c`.
pub fn grid(rows: usize, cols: usize) -> EdgeList {
    let mut edges = EdgeList::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as VertexId;
            if c + 1 < cols {
                edges.push(v, v + 1);
            }
            if r + 1 < rows {
                edges.push(v, v + cols as VertexId);
            }
        }
    }
    edges
}

/// Complete `arity`-ary tree of the given `depth` (depth 0 = single
/// root).  Vertices are numbered level by level; returns the edge list.
pub fn balanced_tree(arity: usize, depth: usize) -> EdgeList {
    assert!(arity >= 1, "arity must be positive");
    let mut edges = EdgeList::new();
    let mut level_start = 0usize;
    let mut level_size = 1usize;
    let mut next_id = 1usize;
    for _ in 0..depth {
        for p in level_start..level_start + level_size {
            for _ in 0..arity {
                edges.push(p as VertexId, next_id as VertexId);
                next_id += 1;
            }
        }
        level_start += level_size;
        level_size *= arity;
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphct_core::builder::build_undirected_simple;

    #[test]
    fn path_shape() {
        let g = build_undirected_simple(&path(5)).unwrap();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(path(1).is_empty());
        assert!(path(0).is_empty());
    }

    #[test]
    fn cycle_shape() {
        let g = build_undirected_simple(&cycle(6)).unwrap();
        assert_eq!(g.num_edges(), 6);
        assert!(g.degrees().iter().all(|&d| d == 2));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_cycle_panics() {
        cycle(2);
    }

    #[test]
    fn star_shape() {
        let g = build_undirected_simple(&star(7)).unwrap();
        assert_eq!(g.degree(0), 6);
        assert!((1..7).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = build_undirected_simple(&complete(6)).unwrap();
        assert_eq!(g.num_edges(), 15);
        assert!(g.degrees().iter().all(|&d| d == 5));
    }

    #[test]
    fn grid_shape() {
        let g = build_undirected_simple(&grid(3, 4)).unwrap();
        assert_eq!(g.num_vertices(), 12);
        // 3×4 grid: 3·3 horizontal + 2·4 vertical = 17 edges.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (1,1)
    }

    #[test]
    fn tree_shape() {
        let g = build_undirected_simple(&balanced_tree(2, 3)).unwrap();
        assert_eq!(g.num_vertices(), 15); // 1+2+4+8
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(14), 1); // leaf
        let trivial = balanced_tree(3, 0);
        assert!(trivial.is_empty());
    }
}
