//! Erdős–Rényi uniform random graphs.

use graphct_core::{EdgeList, VertexId};
use graphct_mt::rng::task_rng;
use rand::RngExt;
use rayon::prelude::*;

/// G(n, m): `m` edges drawn uniformly (with replacement) over ordered
/// pairs with distinct endpoints.  Deduplicate via the
/// [`graphct_core::GraphBuilder`] when a simple graph is needed.
///
/// # Panics
/// Panics when `n < 2` and `m > 0` (no valid non-loop pair exists).
pub fn gnm(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(n >= 2 || m == 0, "G(n, m) with m > 0 requires n >= 2");
    let pairs: Vec<(VertexId, VertexId)> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let mut rng = task_rng(seed, i);
            let s = rng.random_range(0..n as VertexId);
            let mut t = rng.random_range(0..(n - 1) as VertexId);
            if t >= s {
                t += 1;
            }
            (s, t)
        })
        .collect();
    EdgeList::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphct_core::builder::build_undirected_simple;

    #[test]
    fn edge_count_and_no_loops() {
        let e = gnm(100, 500, 1);
        assert_eq!(e.len(), 500);
        assert_eq!(e.count_self_loops(), 0);
        assert!(e.min_num_vertices() <= 100);
    }

    #[test]
    fn deterministic() {
        assert_eq!(gnm(50, 100, 9), gnm(50, 100, 9));
        assert_ne!(gnm(50, 100, 9), gnm(50, 100, 10));
    }

    #[test]
    fn roughly_uniform_endpoints() {
        let e = gnm(10, 20_000, 4);
        let mut counts = [0usize; 10];
        for &(s, t) in e.as_slice() {
            counts[s as usize] += 1;
            counts[t as usize] += 1;
        }
        // Each vertex expects 4000 endpoint incidences; allow ±15 %.
        for (v, &c) in counts.iter().enumerate() {
            assert!((3400..=4600).contains(&c), "vertex {v} count {c}");
        }
    }

    #[test]
    fn zero_edges_ok() {
        assert!(gnm(0, 0, 0).is_empty());
        assert!(gnm(1, 0, 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "requires n >= 2")]
    fn one_vertex_with_edges_panics() {
        gnm(1, 5, 0);
    }

    #[test]
    fn builds_simple_graph() {
        let g = build_undirected_simple(&gnm(200, 800, 2)).unwrap();
        assert!(g.num_edges() <= 800);
        assert!(g.is_symmetric());
    }
}
