//! Planted-partition community graphs.
//!
//! "Natural clusters form, but the clusters do not partition the graph.
//! The clusters overlap where communities share members, and some actors
//! may not join any larger communities." (paper §I-B)  This generator
//! plants `communities` groups of configurable size; vertices inside a
//! group link with probability `p_in`, across groups with `p_out`, and a
//! fraction of members are shared between adjacent groups to create the
//! overlap the paper describes.

use graphct_core::{EdgeList, VertexId};
use graphct_mt::rng::task_rng;
use rand::RngExt;
use rayon::prelude::*;

/// Configuration for [`planted_communities`].
#[derive(Debug, Clone, Copy)]
pub struct CommunityConfig {
    /// Number of planted groups.
    pub communities: usize,
    /// Vertices per group.
    pub community_size: usize,
    /// Intra-group edge probability.
    pub p_in: f64,
    /// Inter-group edge probability (across all cross pairs).
    pub p_out: f64,
    /// Fraction of each group's members shared with the next group
    /// (0 disables overlap).
    pub overlap: f64,
}

impl Default for CommunityConfig {
    fn default() -> Self {
        Self {
            communities: 8,
            community_size: 32,
            p_in: 0.3,
            p_out: 0.002,
            overlap: 0.1,
        }
    }
}

/// Generate the planted-community edge list. Returns `(edges, membership)`
/// where `membership[v]` is the primary community of vertex `v`.
pub fn planted_communities(config: &CommunityConfig, seed: u64) -> (EdgeList, Vec<usize>) {
    assert!(
        (0.0..=1.0).contains(&config.p_in),
        "p_in must be a probability"
    );
    assert!(
        (0.0..=1.0).contains(&config.p_out),
        "p_out must be a probability"
    );
    assert!(
        (0.0..=0.5).contains(&config.overlap),
        "overlap must be in [0, 0.5]"
    );
    let k = config.communities;
    let size = config.community_size;
    let n = k * size;
    let shared = (size as f64 * config.overlap) as usize;

    // Group membership lists: group g owns vertices [g*size, (g+1)*size)
    // plus the first `shared` vertices of group g+1 (wrapping not applied:
    // the last group has no borrowed tail).
    let group_members = |g: usize| -> Vec<VertexId> {
        let mut v: Vec<VertexId> = (g * size..(g + 1) * size).map(|x| x as VertexId).collect();
        if g + 1 < k {
            v.extend(((g + 1) * size..(g + 1) * size + shared).map(|x| x as VertexId));
        }
        v
    };

    // Intra-community edges, parallel over groups.
    let mut intra: Vec<(VertexId, VertexId)> = (0..k)
        .into_par_iter()
        .flat_map_iter(|g| {
            let members = group_members(g);
            let mut rng = task_rng(seed, g as u64);
            let mut local = Vec::new();
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    if rng.random::<f64>() < config.p_in {
                        local.push((members[i], members[j]));
                    }
                }
            }
            local
        })
        .collect();

    // Sparse background of inter-community edges.
    let cross_target = (config.p_out * (n * n) as f64 / 2.0) as u64;
    let cross: Vec<(VertexId, VertexId)> = (0..cross_target)
        .into_par_iter()
        .filter_map(|i| {
            let mut rng = task_rng(seed ^ 0xc405, i);
            let s = rng.random_range(0..n as VertexId);
            let t = rng.random_range(0..n as VertexId);
            (s / size as u32 != t / size as u32).then_some((s, t))
        })
        .collect();
    intra.extend(cross);

    let membership: Vec<usize> = (0..n).map(|v| v / size).collect();
    (EdgeList::from_pairs(intra), membership)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphct_core::builder::build_undirected_simple;

    #[test]
    fn sizes_and_membership() {
        let cfg = CommunityConfig::default();
        let (edges, membership) = planted_communities(&cfg, 1);
        assert_eq!(membership.len(), 8 * 32);
        assert!(!edges.is_empty());
        assert_eq!(membership[0], 0);
        assert_eq!(membership[8 * 32 - 1], 7);
    }

    #[test]
    fn intra_density_exceeds_inter() {
        let cfg = CommunityConfig {
            overlap: 0.0,
            ..Default::default()
        };
        let (edges, membership) = planted_communities(&cfg, 2);
        let g = build_undirected_simple(&edges).unwrap();
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (s, t) in g.iter_arcs() {
            if membership[s as usize] == membership[t as usize] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(
            intra > inter * 5,
            "communities not dense enough: intra={intra} inter={inter}"
        );
    }

    #[test]
    fn overlap_creates_shared_members() {
        let cfg = CommunityConfig {
            communities: 3,
            community_size: 30,
            p_in: 0.5,
            p_out: 0.0,
            overlap: 0.2,
        };
        let (edges, membership) = planted_communities(&cfg, 3);
        let g = build_undirected_simple(&edges).unwrap();
        // A vertex at the head of group 1 should have neighbors in both
        // group 0 and group 1.
        let probe = 30u32; // first vertex of group 1, borrowed by group 0
        let groups: std::collections::HashSet<usize> = g
            .neighbors(probe)
            .iter()
            .map(|&u| membership[u as usize])
            .collect();
        assert!(groups.contains(&0) && groups.contains(&1));
    }

    #[test]
    fn deterministic() {
        let cfg = CommunityConfig::default();
        assert_eq!(
            planted_communities(&cfg, 9).0,
            planted_communities(&cfg, 9).0
        );
    }

    #[test]
    #[should_panic(expected = "p_in")]
    fn invalid_probability_panics() {
        let cfg = CommunityConfig {
            p_in: 1.5,
            ..Default::default()
        };
        planted_communities(&cfg, 0);
    }
}
