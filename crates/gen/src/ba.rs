//! Barabási–Albert preferential attachment.
//!
//! Produces the power-law degree distributions the paper observes in all
//! three Twitter datasets (§III-C, Fig. 2).  Each arriving vertex
//! attaches `m` edges to existing vertices chosen proportionally to
//! degree, implemented with the classic repeated-endpoint list so the
//! draw is O(1).

use graphct_core::{EdgeList, VertexId};
use graphct_mt::rng::task_rng;
use rand::RngExt;

/// Generate a BA graph with `n` vertices, each newcomer attaching `m`
/// edges.  The first `m + 1` vertices start as a clique-free seed chain.
/// Sequential by nature (each step depends on the degree state), but fast
/// enough far beyond the experiment sizes.
///
/// # Panics
/// Panics when `m == 0` or `n <= m`.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> EdgeList {
    assert!(m > 0, "attachment count must be positive");
    assert!(n > m, "need more vertices than attachments per step");
    let mut rng = task_rng(seed, 0xba);
    let mut edges = EdgeList::with_capacity((n - m) * m);
    // endpoint pool: each edge contributes both endpoints, so sampling a
    // uniform pool element is degree-proportional sampling.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m);

    // Seed: a chain over the first m+1 vertices.
    for v in 0..m as VertexId {
        edges.push(v, v + 1);
        pool.push(v);
        pool.push(v + 1);
    }

    let mut chosen = Vec::with_capacity(m);
    for v in (m + 1)..n {
        chosen.clear();
        // Draw m distinct targets degree-proportionally.
        while chosen.len() < m {
            let t = pool[rng.random_range(0..pool.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push(v as VertexId, t);
            pool.push(v as VertexId);
            pool.push(t);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphct_core::builder::build_undirected_simple;

    #[test]
    fn edge_count() {
        let e = preferential_attachment(100, 3, 1);
        // seed chain: 3 edges; then 96 newcomers × 3.
        assert_eq!(e.len(), 3 + 96 * 3);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            preferential_attachment(60, 2, 5),
            preferential_attachment(60, 2, 5)
        );
    }

    #[test]
    fn graph_is_connected() {
        let g = build_undirected_simple(&preferential_attachment(300, 2, 3)).unwrap();
        let colors = graph_components(&g);
        assert!(colors.iter().all(|&c| c == colors[0]));
    }

    fn graph_components(g: &graphct_core::CsrGraph) -> Vec<u32> {
        // Local tiny BFS labeling to avoid a dev-dependency cycle on the
        // kernels crate.
        let n = g.num_vertices();
        let mut colors = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n as u32 {
            if colors[s as usize] != u32::MAX {
                continue;
            }
            colors[s as usize] = s;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for &v in g.neighbors(u) {
                    if colors[v as usize] == u32::MAX {
                        colors[v as usize] = s;
                        queue.push_back(v);
                    }
                }
            }
        }
        colors
    }

    #[test]
    fn heavy_tail() {
        let g = build_undirected_simple(&preferential_attachment(2000, 2, 7)).unwrap();
        let degrees = g.degrees();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        let max = *degrees.iter().max().unwrap();
        assert!(max as f64 > 8.0 * mean, "max={max} mean={mean:.1}");
    }

    #[test]
    fn no_duplicate_attachments_per_step() {
        let e = preferential_attachment(50, 4, 2);
        let g = build_undirected_simple(&e).unwrap();
        // Dedup in the builder must not remove anything: targets per
        // newcomer are distinct and newcomers never re-link existing
        // pairs... newcomers only create edges incident to themselves,
        // so duplicates are impossible by construction.
        assert_eq!(g.num_edges(), e.len());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_m_panics() {
        preferential_attachment(10, 0, 0);
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn too_few_vertices_panics() {
        preferential_attachment(3, 3, 0);
    }
}
