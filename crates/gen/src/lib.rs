//! # graphct-gen — synthetic graph generators
//!
//! The paper evaluates GraphCT on synthetic graphs where real data is
//! unavailable or insufficiently large: "A scale-29 R-MAT graph of 537
//! million vertices and 8.6 billion edges emulates such a network"
//! (§V, Facebook-scale; R-MAT parameters A=0.55, B=C=0.1, D=0.25, edge
//! factor 16).  This crate provides:
//!
//! * [`rmat`] — the recursive-matrix generator (Chakrabarti–Zhan–
//!   Faloutsos, paper ref. [7]) with the paper's parameterization as a
//!   preset;
//! * [`er`] — Erdős–Rényi G(n, m) uniform random graphs;
//! * [`ba`] — Barabási–Albert preferential attachment (scale-free
//!   degree law, the structure §III-C observes in tweet graphs);
//! * [`broadcast`] — hub-and-spoke broadcast forests (the "tree-like
//!   broadcast patterns" of Twitter news dissemination, §V);
//! * [`community`] — planted-partition graphs (overlapping conversation
//!   clusters, §I-B);
//! * [`classic`] — deterministic reference topologies (path, cycle,
//!   star, complete, grid, balanced tree) used heavily in tests.
//!
//! All randomized generators are deterministic functions of their seed,
//! independent of thread count.

pub mod ba;
pub mod broadcast;
pub mod classic;
pub mod community;
pub mod er;
pub mod rmat;

pub use ba::preferential_attachment;
pub use er::gnm;
pub use rmat::{rmat_edges, RmatConfig};
