//! R-MAT recursive-matrix graph generator.
//!
//! Each edge is placed by recursively descending a 2×2 partition of the
//! adjacency matrix with probabilities `(a, b, c, d)` (paper ref. [7]).
//! The skewed quadrant probabilities produce the heavy-tailed degree
//! distributions of social networks.  The paper's instance (§IV-C
//! footnote 3): `A = 0.55, B = C = 0.1, D = 0.25`, scale 29, edge
//! factor 16.

use graphct_core::{EdgeList, VertexId};
use graphct_mt::rng::task_rng;
use rand::RngExt;
use rayon::prelude::*;

/// R-MAT parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Edges generated = `edge_factor << scale`.
    pub edge_factor: usize,
    /// Quadrant probabilities; must be positive and sum to 1.
    pub a: f64,
    /// Upper-right quadrant probability.
    pub b: f64,
    /// Lower-left quadrant probability.
    pub c: f64,
    /// Lower-right quadrant probability.
    pub d: f64,
    /// Per-level multiplicative noise on the quadrant probabilities
    /// (0 disables).  Noise decorrelates the otherwise self-similar
    /// structure, as recommended by the Graph500 reference.
    pub noise: f64,
}

impl RmatConfig {
    /// The paper's parameterization (§IV-C footnote 3) at a chosen scale.
    pub fn paper(scale: u32, edge_factor: usize) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.55,
            b: 0.10,
            c: 0.10,
            d: 0.25,
            noise: 0.0,
        }
    }

    /// Number of vertices, `2^scale`.
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Number of generated edges.
    pub fn num_edges(&self) -> usize {
        self.edge_factor << self.scale
    }

    fn validate(&self) {
        assert!(self.scale < 32, "scale must fit u32 vertex ids");
        assert!(
            self.a > 0.0 && self.b > 0.0 && self.c > 0.0 && self.d > 0.0,
            "R-MAT probabilities must be positive"
        );
        let sum = self.a + self.b + self.c + self.d;
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "R-MAT probabilities must sum to 1, got {sum}"
        );
        assert!(
            (0.0..0.5).contains(&self.noise),
            "noise must be in [0, 0.5)"
        );
    }
}

/// Generate the R-MAT edge list (parallel over edges; deterministic in
/// `seed`).  The output is a directed multigraph edge list — pass it
/// through [`graphct_core::GraphBuilder`] with the policies an
/// experiment needs.
///
/// # Examples
///
/// ```
/// use graphct_gen::rmat::{rmat_edges, RmatConfig};
///
/// let cfg = RmatConfig::paper(10, 16); // the paper's A/B/C/D at scale 10
/// let edges = rmat_edges(&cfg, 42);
/// assert_eq!(edges.len(), 16 << 10);
/// assert_eq!(edges, rmat_edges(&cfg, 42)); // deterministic in the seed
/// ```
pub fn rmat_edges(config: &RmatConfig, seed: u64) -> EdgeList {
    config.validate();
    let m = config.num_edges();
    let pairs: Vec<(VertexId, VertexId)> = (0..m as u64)
        .into_par_iter()
        .map(|i| {
            let mut rng = task_rng(seed, i);
            one_edge(config, &mut rng)
        })
        .collect();
    EdgeList::from_pairs(pairs)
}

fn one_edge<R: rand::Rng>(config: &RmatConfig, rng: &mut R) -> (VertexId, VertexId) {
    let mut row = 0u64;
    let mut col = 0u64;
    let (mut a, mut b, mut c, mut d) = (config.a, config.b, config.c, config.d);
    for level in 0..config.scale {
        let bit = 1u64 << (config.scale - 1 - level);
        let r: f64 = rng.random();
        if r < a {
            // upper-left: no bits set
        } else if r < a + b {
            col |= bit;
        } else if r < a + b + c {
            row |= bit;
        } else {
            row |= bit;
            col |= bit;
        }
        if config.noise > 0.0 {
            // Multiplicative jitter, renormalized.
            let jitter = |p: f64, r: f64| p * (1.0 - config.noise + 2.0 * config.noise * r);
            a = jitter(a, rng.random());
            b = jitter(b, rng.random());
            c = jitter(c, rng.random());
            d = jitter(d, rng.random());
            let sum = a + b + c + d;
            a /= sum;
            b /= sum;
            c /= sum;
            d /= sum;
        }
    }
    (row as VertexId, col as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphct_core::builder::build_undirected_simple;

    #[test]
    fn sizes_match_config() {
        let cfg = RmatConfig::paper(8, 8);
        assert_eq!(cfg.num_vertices(), 256);
        assert_eq!(cfg.num_edges(), 2048);
        let edges = rmat_edges(&cfg, 1);
        assert_eq!(edges.len(), 2048);
        assert!(edges.min_num_vertices() <= 256);
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = RmatConfig::paper(6, 4);
        assert_eq!(rmat_edges(&cfg, 7), rmat_edges(&cfg, 7));
        assert_ne!(rmat_edges(&cfg, 7), rmat_edges(&cfg, 8));
    }

    #[test]
    fn skewed_quadrants_concentrate_low_ids() {
        // With a = 0.55, low vertex ids should carry far more endpoints
        // than high ids.
        let cfg = RmatConfig::paper(10, 16);
        let edges = rmat_edges(&cfg, 3);
        let half = (cfg.num_vertices() / 2) as u32;
        let (low, high) = edges
            .as_slice()
            .iter()
            .fold((0usize, 0usize), |(l, h), &(s, t)| {
                let l = l + usize::from(s < half) + usize::from(t < half);
                let h = h + usize::from(s >= half) + usize::from(t >= half);
                (l, h)
            });
        assert!(
            low as f64 > high as f64 * 1.5,
            "expected skew, got low={low} high={high}"
        );
    }

    #[test]
    fn heavy_tail_degree_distribution() {
        // Max degree should far exceed the mean — the scale-free
        // signature the paper leans on (Fig. 2).
        let cfg = RmatConfig::paper(12, 16);
        let g = build_undirected_simple(&rmat_edges(&cfg, 5)).unwrap();
        let degrees = g.degrees();
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        let max = *degrees.iter().max().unwrap();
        // An Erdős–Rényi graph of this density tops out near 2× the
        // mean; R-MAT's skew puts the max far above that.
        assert!(
            max as f64 > mean * 6.0,
            "expected heavy tail: max={max}, mean={mean:.1}"
        );
    }

    #[test]
    fn noise_variant_generates() {
        let cfg = RmatConfig {
            noise: 0.1,
            ..RmatConfig::paper(7, 4)
        };
        let edges = rmat_edges(&cfg, 2);
        assert_eq!(edges.len(), cfg.num_edges());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_probabilities_panic() {
        let cfg = RmatConfig {
            a: 0.9,
            ..RmatConfig::paper(4, 2)
        };
        rmat_edges(&cfg, 0);
    }
}
