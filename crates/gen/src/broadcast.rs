//! Broadcast forests — the tree-like news-dissemination shape.
//!
//! "Twitter's message connections appear primarily tree-structured as a
//! news dissemination system … Information flows one way, from the
//! broadcast hub out to the users" (paper abstract, §III-C).  This
//! generator plants `hubs` broadcast sources, each with a geometric
//! cascade of re-broadcasters: a hub reaches first-tier audiences
//! directly and each member re-broadcasts to a shrinking audience of its
//! own, yielding the shallow wide trees of Fig. 3's "original" panels.

use graphct_core::{EdgeList, VertexId};
use graphct_mt::rng::task_rng;
use rand::RngExt;

/// Configuration for [`broadcast_forest`].
#[derive(Debug, Clone, Copy)]
pub struct BroadcastConfig {
    /// Number of independent broadcast trees.
    pub hubs: usize,
    /// Direct audience size of each hub.
    pub fanout: usize,
    /// Audience shrink factor per tier (e.g. 0.1: each re-broadcaster
    /// reaches 10 % of its parent's audience).
    pub decay: f64,
    /// Maximum cascade depth.
    pub max_depth: usize,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        Self {
            hubs: 10,
            fanout: 50,
            decay: 0.1,
            max_depth: 4,
        }
    }
}

/// Generate a forest of broadcast trees.  Vertices are numbered densely:
/// hubs first, then audiences in creation order.  Edges point from the
/// listener to the broadcaster (the listener *mentions* the source, as
/// in "in incidental communication, the user will refer to the broadcast
/// source", §III-C).  Returns `(edges, num_vertices)`.
pub fn broadcast_forest(config: &BroadcastConfig, seed: u64) -> (EdgeList, usize) {
    let mut rng = task_rng(seed, 0xb0);
    let mut edges = EdgeList::new();
    let mut next_id: VertexId = config.hubs as VertexId;
    for hub in 0..config.hubs as VertexId {
        // (broadcaster, audience_budget) frontier per tier.
        let mut tier: Vec<(VertexId, usize)> = vec![(hub, config.fanout)];
        for _ in 0..config.max_depth {
            let mut next_tier = Vec::new();
            for &(parent, budget) in &tier {
                for _ in 0..budget {
                    let listener = next_id;
                    next_id += 1;
                    edges.push(listener, parent);
                    let child_budget = (budget as f64 * config.decay) as usize;
                    if child_budget > 0 && rng.random::<f64>() < 0.9 {
                        next_tier.push((listener, child_budget));
                    }
                }
            }
            if next_tier.is_empty() {
                break;
            }
            tier = next_tier;
        }
    }
    (edges, next_id as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphct_core::builder::build_undirected_simple;

    #[test]
    fn forest_is_acyclic_and_tree_sized() {
        let (edges, n) = broadcast_forest(&BroadcastConfig::default(), 1);
        // A forest over n vertices with h trees has n - h edges.
        assert_eq!(edges.len(), n - 10);
        let g = build_undirected_simple(&edges).unwrap();
        assert_eq!(g.num_edges(), edges.len()); // no duplicates possible
    }

    #[test]
    fn hubs_have_high_degree() {
        let cfg = BroadcastConfig {
            hubs: 3,
            fanout: 40,
            decay: 0.1,
            max_depth: 3,
        };
        let (edges, _) = broadcast_forest(&cfg, 2);
        let g = build_undirected_simple(&edges).unwrap();
        for hub in 0..3 {
            assert!(g.degree(hub) >= 40, "hub {hub} degree {}", g.degree(hub));
        }
    }

    #[test]
    fn deterministic() {
        let cfg = BroadcastConfig::default();
        assert_eq!(broadcast_forest(&cfg, 3).0, broadcast_forest(&cfg, 3).0);
    }

    #[test]
    fn depth_limit_respected() {
        let cfg = BroadcastConfig {
            hubs: 1,
            fanout: 10,
            decay: 1.0, // no shrink: depth limit is the only stop
            max_depth: 2,
        };
        let (edges, _) = broadcast_forest(&cfg, 4);
        let g = build_undirected_simple(&edges).unwrap();
        // BFS from the hub: no vertex deeper than max_depth.
        let mut depth = vec![u32::MAX; g.num_vertices()];
        depth[0] = 0;
        let mut q = std::collections::VecDeque::from([0u32]);
        while let Some(u) = q.pop_front() {
            for &v in g.neighbors(u) {
                if depth[v as usize] == u32::MAX {
                    depth[v as usize] = depth[u as usize] + 1;
                    q.push_back(v);
                }
            }
        }
        assert!(depth.iter().all(|&d| d <= 2));
    }

    #[test]
    fn zero_hubs_is_empty() {
        let cfg = BroadcastConfig {
            hubs: 0,
            ..Default::default()
        };
        let (edges, n) = broadcast_forest(&cfg, 0);
        assert!(edges.is_empty());
        assert_eq!(n, 0);
    }
}
