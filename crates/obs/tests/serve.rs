//! Serve-mode integration test: live mid-ingest scrapes over real HTTP.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use graphct_obs::{start, ServeConfig};
use graphct_trace::schema::{validate_exposition, validate_jsonl};
use graphct_twitter::DatasetProfile;

fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    let prefix = format!("{name} ");
    exposition
        .lines()
        .find(|l| l.starts_with(&prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

/// Scrape `/metrics` until the ingest loop has completed at least one
/// batch (or time out).
fn wait_for_first_batch(addr: SocketAddr) -> String {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, body) = http_get(addr, "/metrics");
        if status == 200 && metric_value(&body, "graphct_ingest_batches_total").unwrap_or(0.0) > 0.0
        {
            return body;
        }
        assert!(Instant::now() < deadline, "no batch ingested within 30s");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn mid_ingest_scrapes_increase_and_healthz_flips_on_drain() {
    let dir = std::env::temp_dir().join(format!("graphct_obs_serve_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_out = dir.join("serve_trace.jsonl");

    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        profile: DatasetProfile::atlflood().scaled(0.05),
        seed: 7,
        batch_size: 32,
        batches: 0, // endless; the test drives shutdown
        interval_ms: 2,
        window_batches: 64,
        trace_out: Some(trace_out.clone()),
        stall_timeout_ms: 0, // watchdog exercised by its own test
        profile_hz: 97,
        ..ServeConfig::default()
    })
    .expect("serve starts");
    let addr = handle.local_addr();

    // --- live /metrics, scrape one ---
    let first = wait_for_first_batch(addr);
    validate_exposition(&first).unwrap_or_else(|(line, e)| panic!("line {line}: {e}\n{first}"));
    for series in [
        "graphct_ingest_batches_total",
        "graphct_ingest_mentions_total",
        "graphct_ingest_edges_inserted_total",
        "graphct_ingest_errors_total",
        "graphct_ingest_watermark_batch",
        "graphct_ingest_edges_per_sec",
        "graphct_ingest_lag_us",
        "graphct_window_vertices",
        "graphct_window_edges",
        "graphct_window_components",
    ] {
        assert!(
            metric_value(&first, series).is_some(),
            "missing required series {series}:\n{first}"
        );
    }

    // --- native histogram family + watchdog lines ride the scrape ---
    assert!(
        first.contains("# TYPE graphct_ingest_batch_ns histogram"),
        "scrape must expose a native histogram family:\n{first}"
    );
    assert!(
        first.contains("graphct_ingest_batch_ns_bucket{le=\"+Inf\"}"),
        "histogram family must close with the +Inf bucket:\n{first}"
    );
    assert!(
        metric_value(&first, "graphct_staleness_seconds").is_some(),
        "missing staleness gauge:\n{first}"
    );
    assert!(
        metric_value(&first, "graphct_stall_seconds_total").is_some(),
        "missing stall counter:\n{first}"
    );

    // --- healthy while serving ---
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!((status, body.trim()), (200, "ok"));

    // --- scrape two: counters strictly increase mid-run ---
    std::thread::sleep(Duration::from_millis(150));
    let (status, second) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    validate_exposition(&second).unwrap();
    for counter in [
        "graphct_ingest_batches_total",
        "graphct_ingest_mentions_total",
    ] {
        let a = metric_value(&first, counter).unwrap();
        let b = metric_value(&second, counter).unwrap();
        assert!(
            b > a,
            "{counter} must strictly increase between scrapes ({a} -> {b})"
        );
    }
    // Span aggregates are live too: ingest_batch spans have completed.
    assert!(
        metric_value(&second, "graphct_span_count{span=\"ingest_batch\"}").unwrap_or(0.0) > 0.0,
        "{second}"
    );

    // --- /profile returns live folded stacks mid-ingest ---
    let deadline = Instant::now() + Duration::from_secs(30);
    let folded = loop {
        let (status, body) = http_get(addr, "/profile");
        assert_eq!(status, 200);
        if body.lines().any(|l| l.contains("ingest_batch")) {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "profiler never sampled an open ingest_batch span:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    // The body is valid folded-stack (flamegraph.pl/speedscope) input
    // rooted at the ingest thread, with an on/off-CPU state leaf.
    let stacks = graphct_trace::analyze::parse_folded(&folded).expect("folded text parses");
    let hit = stacks
        .iter()
        .find(|(path, _)| path.contains("ingest_batch"))
        .unwrap();
    assert!(hit.1 > 0, "sampled stack must have a positive count");
    assert!(
        hit.0.starts_with("graphct-obs-ingest;"),
        "stack should be rooted at the ingest thread: {}",
        hit.0
    );
    assert!(
        hit.0.ends_with(";[cpu]") || hit.0.ends_with(";[idle]"),
        "stack should be state-tagged: {}",
        hit.0
    );
    // JSON variant parses and carries the sampler's self-observation.
    let (status, json_body) = http_get(addr, "/profile?format=json");
    assert_eq!(status, 200);
    let v = graphct_trace::json::parse(&json_body).expect("profile json parses");
    assert!(v.get("samples_total").and_then(|s| s.as_u64()).unwrap() > 0);
    assert!(json_body.contains("ingest_batch"), "{json_body}");
    // Top-N self-time table renders.
    let (status, top) = http_get(addr, "/profile?format=top");
    assert_eq!(status, 200);
    assert!(top.contains("continuous profiler"), "{top}");

    // --- /progress is valid JSON with ingest progress ---
    let (status, progress) = http_get(addr, "/progress");
    assert_eq!(status, 200);
    let v = graphct_trace::json::parse(&progress).expect("progress is JSON");
    assert_eq!(v.get("health").and_then(|h| h.as_str()), Some("ok"));
    let ingest = v
        .get("kernels")
        .and_then(|k| k.get("ingest"))
        .unwrap_or_else(|| panic!("no ingest kernel in {progress}"));
    assert!(ingest.get("done").and_then(|d| d.as_u64()).unwrap() > 0);

    // --- graceful shutdown: healthz flips, then everything drains ---
    handle.begin_shutdown();
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!((status, body.trim()), (503, "draining"));

    let stats = handle.wait();
    assert!(stats.batches > 0);
    assert!(stats.mentions > 0);

    // The trace tee was flushed on drain and is schema-valid, with the
    // ingest telemetry in it.
    let trace = std::fs::read_to_string(&trace_out).unwrap();
    validate_jsonl(&trace).unwrap_or_else(|(line, e)| panic!("line {line}: {e}"));
    assert!(trace.contains("\"ingest_batch\""), "trace has batch spans");
    assert!(
        trace.contains("ingest_batches_total"),
        "trace has final counter totals"
    );
    assert!(
        trace.contains("\"ingest_batch_ns\""),
        "trace has the batch-latency histogram record"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_stall_injection_degrades_healthz_and_recovers() {
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        profile: DatasetProfile::atlflood().scaled(0.05),
        seed: 11,
        batch_size: 16,
        batches: 0,
        interval_ms: 1,
        window_batches: 32,
        trace_out: None,
        stall_timeout_ms: 250,
        profile_hz: 0, // profiler exercised by the mid-ingest test
        ..ServeConfig::default()
    })
    .expect("serve starts");
    let addr = handle.local_addr();
    wait_for_first_batch(addr);

    // Healthy while batches flow.
    assert_eq!(http_get(addr, "/healthz").0, 200);

    // Freeze ingest over HTTP (the CI stall injection uses curl against
    // the same endpoint), then poll until the deadline trips.
    let (status, body) = http_get(addr, "/pause");
    assert_eq!((status, body.trim()), (200, "paused"));
    let deadline = Instant::now() + Duration::from_secs(10);
    let stall_body = loop {
        let (status, body) = http_get(addr, "/healthz");
        if status == 503 {
            break body;
        }
        assert!(Instant::now() < deadline, "healthz never flipped to 503");
        std::thread::sleep(Duration::from_millis(25));
    };
    assert!(
        stall_body.starts_with("stalled: no ingest batch for"),
        "503 body must carry the stall reason, got {stall_body:?}"
    );

    // The scrape carries a growing staleness gauge and the stall counter.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200, "metrics must keep answering while stalled");
    validate_exposition(&metrics).unwrap_or_else(|(line, e)| panic!("line {line}: {e}\n{metrics}"));
    assert!(
        metric_value(&metrics, "graphct_staleness_seconds").unwrap() > 0.25,
        "staleness must exceed the 250ms deadline:\n{metrics}"
    );
    assert!(
        metric_value(&metrics, "graphct_stall_seconds_total").unwrap() > 0.0,
        "stall counter must accumulate during a stall:\n{metrics}"
    );

    // /progress reports the degraded health string.
    let (_, progress) = http_get(addr, "/progress");
    let v = graphct_trace::json::parse(&progress).expect("progress is JSON");
    assert_eq!(v.get("health").and_then(|h| h.as_str()), Some("stalled"));

    // Recovery: resume ingest, wait for a fresh batch to clear the stall.
    let (status, body) = http_get(addr, "/resume");
    assert_eq!((status, body.trim()), (200, "resumed"));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, body) = http_get(addr, "/healthz");
        if status == 200 {
            assert_eq!(body.trim(), "ok");
            break;
        }
        assert!(Instant::now() < deadline, "healthz never recovered");
        std::thread::sleep(Duration::from_millis(25));
    }

    // The stall total survives recovery (monotone counter).
    let (_, metrics) = http_get(addr, "/metrics");
    assert!(
        metric_value(&metrics, "graphct_stall_seconds_total").unwrap() > 0.0,
        "stall total must persist after recovery:\n{metrics}"
    );

    let stats = handle.wait();
    assert!(stats.batches > 0);
}
