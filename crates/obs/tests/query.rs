//! Query-plane integration tests: concurrent `/v1/query/*` clients over
//! real HTTP against a live ingest, oracle-checked against offline
//! kernel recomputes on the same frozen snapshot, plus the legacy
//! wire-format compatibility contract for the pre-router endpoints.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use graphct_kernels::{connected_components, top_k_betweenness};
use graphct_obs::{bc_seed, query_bc_config, start, ServeConfig};
use graphct_trace::json::{parse, Json};
use graphct_twitter::DatasetProfile;

fn http_get(addr: SocketAddr, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let status: u16 = text
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (head, body) = text.split_once("\r\n\r\n").expect("header/body split");
    let content_type = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Type: "))
        .unwrap_or_default()
        .to_owned();
    (status, content_type, body.to_owned())
}

fn serve_config(seed: u64) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        profile: DatasetProfile::atlflood().scaled(0.05),
        seed,
        batch_size: 32,
        batches: 0, // endless; the tests drive shutdown
        interval_ms: 2,
        window_batches: 256,
        trace_out: None,
        stall_timeout_ms: 0,
        profile_hz: 0,
        snapshot_every: 2,
        query_threads: 4,
        topk: 10,
    }
}

/// Parse a `/v1/*` envelope, asserting the versioned shape.
fn envelope(body: &str) -> (u64, f64, Json) {
    let v = parse(body).unwrap_or_else(|e| panic!("{e}: {body}"));
    assert_eq!(v.get("v").and_then(Json::as_u64), Some(1), "{body}");
    let epoch = v.get("epoch").and_then(Json::as_u64).expect("epoch");
    let staleness = v
        .get("staleness_s")
        .and_then(Json::as_f64)
        .expect("staleness_s");
    assert!(staleness >= 0.0);
    let data = v.get("data").cloned().expect("data member");
    (epoch, staleness, data)
}

/// Poll `/v1/snapshot` until at least one real freeze is published.
fn wait_for_first_snapshot(addr: SocketAddr) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, _, body) = http_get(addr, "/v1/snapshot");
        assert_eq!(status, 200, "{body}");
        let (epoch, _, _) = envelope(&body);
        if epoch > 0 {
            return epoch;
        }
        assert!(Instant::now() < deadline, "no snapshot within 30s");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn metric_value(exposition: &str, name: &str) -> Option<f64> {
    let prefix = format!("{name} ");
    exposition
        .lines()
        .find(|l| l.starts_with(&prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn concurrent_queries_mid_ingest_with_offline_oracle() {
    let handle = start(serve_config(7)).expect("serve starts");
    let addr = handle.local_addr();
    wait_for_first_snapshot(addr);

    let (_, _, before) = http_get(addr, "/metrics");
    let batches_before = metric_value(&before, "graphct_ingest_batches_total").unwrap();

    // --- 4 client threads hammer topk + component mid-ingest ---
    let clients: Vec<_> = (0..4)
        .map(|c| {
            std::thread::spawn(move || {
                let mut epochs = Vec::new();
                for i in 0..12 {
                    let path = if i % 2 == 0 {
                        "/v1/query/topk?k=5&samples=8"
                    } else {
                        "/v1/query/component?vertex=0"
                    };
                    let (status, content_type, body) = http_get(addr, path);
                    assert_eq!(status, 200, "client {c}: {body}");
                    assert_eq!(content_type, "application/json");
                    let (epoch, _, data) = envelope(&body);
                    epochs.push(epoch);
                    if i % 2 == 0 {
                        assert!(data.get("top").and_then(Json::as_arr).is_some(), "{body}");
                    } else {
                        assert!(data.get("size").and_then(Json::as_u64).unwrap() >= 1);
                    }
                }
                epochs
            })
        })
        .collect();
    for client in clients {
        let epochs = client.join().expect("client thread");
        assert!(
            epochs.windows(2).all(|w| w[0] <= w[1]),
            "epochs must be monotone per client: {epochs:?}"
        );
    }

    // --- ingest kept flowing underneath the query load ---
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, after) = http_get(addr, "/metrics");
        if metric_value(&after, "graphct_ingest_batches_total").unwrap() > batches_before {
            assert!(
                metric_value(&after, "graphct_snapshot_epoch").unwrap() >= 1.0,
                "{after}"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "ingest stopped advancing under query load"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // --- oracle: freeze the world, recompute offline, demand identity ---
    let (status, _, body) = http_get(addr, "/pause");
    assert_eq!((status, body.trim()), (200, "paused"));
    // A batch may have been mid-flight when pause landed; wait until the
    // epoch is stable across two reads.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, a) = http_get(addr, "/v1/snapshot");
        std::thread::sleep(Duration::from_millis(50));
        let (_, _, b) = http_get(addr, "/v1/snapshot");
        if envelope(&a).0 == envelope(&b).0 {
            break;
        }
        assert!(Instant::now() < deadline, "epoch never stabilized");
    }

    let snap = handle.snapshot();
    let n = snap.graph.num_vertices();
    assert!(n > 0, "paused snapshot must be non-empty");

    // topk: the served ranking and scores must be bit-identical to the
    // same kernel run offline on the frozen graph with the same
    // epoch-derived seed.
    let (k, samples) = (5usize, 8usize);
    let (status, _, body) = http_get(addr, "/v1/query/topk?k=5&samples=8");
    assert_eq!(status, 200, "{body}");
    let (epoch, _, data) = envelope(&body);
    assert_eq!(epoch, snap.epoch, "handle and HTTP must agree on epoch");
    let config = query_bc_config(samples.min(n), bc_seed(7, epoch));
    let expect = top_k_betweenness(&snap.graph, &config, k).expect("offline recompute");
    let served: Vec<(u64, f64)> = data
        .get("top")
        .and_then(Json::as_arr)
        .expect("top array")
        .iter()
        .map(|entry| {
            (
                entry.get("vertex").and_then(Json::as_u64).unwrap(),
                entry.get("score").and_then(Json::as_f64).unwrap(),
            )
        })
        .collect();
    assert_eq!(served.len(), expect.len());
    for (got, want) in served.iter().zip(&expect) {
        assert_eq!(got.0, u64::from(want.0), "ranking mismatch: {body}");
        assert_eq!(
            got.1.to_bits(),
            want.1.to_bits(),
            "score must be bit-identical: served {} vs offline {}",
            got.1,
            want.1
        );
    }

    // component + degree: identical to offline components on the freeze.
    let colors = connected_components(&*snap.graph);
    let mut sizes = vec![0u64; n];
    for &c in &colors {
        sizes[c as usize] += 1;
    }
    for v in [0usize, n / 2, n - 1] {
        let (status, _, body) = http_get(addr, &format!("/v1/query/component?vertex={v}"));
        assert_eq!(status, 200, "{body}");
        let (epoch, _, data) = envelope(&body);
        assert_eq!(epoch, snap.epoch);
        assert_eq!(
            data.get("component").and_then(Json::as_u64).unwrap(),
            u64::from(colors[v]),
            "{body}"
        );
        assert_eq!(
            data.get("size").and_then(Json::as_u64).unwrap(),
            sizes[colors[v] as usize],
            "{body}"
        );

        let (status, _, body) = http_get(addr, &format!("/v1/query/degree?vertex={v}"));
        assert_eq!(status, 200, "{body}");
        let (_, _, data) = envelope(&body);
        assert_eq!(
            data.get("degree").and_then(Json::as_u64).unwrap(),
            snap.graph.neighbors(v as u32).len() as u64
        );
        assert_eq!(
            data.get("reach").and_then(Json::as_u64).unwrap(),
            sizes[colors[v] as usize] - 1
        );
    }

    // ego: members are the center plus its frozen neighbors.
    let (status, _, body) = http_get(addr, "/v1/query/ego?vertex=0");
    assert_eq!(status, 200, "{body}");
    let (_, _, data) = envelope(&body);
    let members: Vec<u64> = data
        .get("members")
        .and_then(Json::as_arr)
        .expect("members")
        .iter()
        .map(|m| m.get("vertex").and_then(Json::as_u64).unwrap())
        .collect();
    let mut want: Vec<u64> = snap
        .graph
        .neighbors(0)
        .iter()
        .map(|&v| u64::from(v))
        .collect();
    want.push(0);
    want.sort_unstable();
    assert_eq!(members, want, "{body}");

    // on-demand refresh: resume ingest and the requested freeze lands.
    let (status, _, body) = http_get(addr, "/v1/snapshot/refresh");
    assert_eq!(status, 200, "{body}");
    http_get(addr, "/resume");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, _, body) = http_get(addr, "/v1/snapshot");
        if envelope(&body).0 > snap.epoch {
            break;
        }
        assert!(Instant::now() < deadline, "refresh never produced an epoch");
        std::thread::sleep(Duration::from_millis(20));
    }

    let stats = handle.wait();
    assert!(stats.batches > 0);
}

#[test]
fn legacy_wire_formats_are_unchanged() {
    let handle = start(serve_config(11)).expect("serve starts");
    let addr = handle.local_addr();
    wait_for_first_snapshot(addr);

    // /healthz: exact 200 body.
    let (status, content_type, body) = http_get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    assert_eq!(content_type, "text/plain; charset=utf-8");

    // /metrics: Prometheus exposition content type and schema.
    let (status, content_type, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert_eq!(content_type, "text/plain; version=0.0.4; charset=utf-8");
    graphct_trace::schema::validate_exposition(&body)
        .unwrap_or_else(|(line, e)| panic!("line {line}: {e}\n{body}"));

    // /progress: JSON with the health member.
    let (status, content_type, body) = http_get(addr, "/progress");
    assert_eq!(status, 200);
    assert_eq!(content_type, "application/json");
    let v = parse(&body).expect("progress is JSON");
    assert_eq!(v.get("health").and_then(Json::as_str), Some("ok"));

    // /pause + /resume: exact bodies.
    let (status, _, body) = http_get(addr, "/pause");
    assert_eq!((status, body.as_str()), (200, "paused\n"));
    let (status, _, body) = http_get(addr, "/resume");
    assert_eq!((status, body.as_str()), (200, "resumed\n"));

    // Unknown path: exact 404 body.
    let (status, _, body) = http_get(addr, "/nope");
    assert_eq!((status, body.as_str()), (404, "not found\n"));

    // Non-GET: exact 405 body, on known and unknown paths alike.
    for target in ["/metrics", "/definitely/not/a/route"] {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 405 Method Not Allowed"),
            "{text}"
        );
        assert!(text.ends_with("method not allowed\n"), "{text}");
    }

    // Draining still flips healthz exactly as before.
    handle.begin_shutdown();
    let (status, _, body) = http_get(addr, "/healthz");
    assert_eq!((status, body.as_str()), (503, "draining\n"));
    handle.wait();
}
