//! # graphct-obs — the live monitoring plane
//!
//! The paper's motivating scenario is *near-real-time* crisis monitoring
//! (tracking `#atlflood` as the flood unfolds, §III-A-2); this crate
//! turns the flush-at-exit telemetry of `graphct-trace` into an
//! operational plane you can watch while the analysis runs:
//!
//! * [`http`] — a std-only HTTP/1.1 server (no new dependencies; the
//!   shims-only policy holds): a nonblocking accept thread feeding a
//!   small worker pool, so slow queries never block health probes;
//! * [`router`] — method + path-pattern dispatch plus the versioned
//!   JSON envelope (`{"v", "epoch", "staleness_s", "data" | "error"}`)
//!   every `/v1/*` response is wrapped in;
//! * [`query`] — the live query plane: graph queries answered from
//!   epoch-tagged [`Snapshot`](graphct_stream::Snapshot) freezes while
//!   ingest continues;
//! * [`progress`] — a sink deriving per-kernel percent-complete and ETA
//!   from the telemetry the kernels already emit;
//! * [`serve`] — the `graphct serve` driver: paced batches of the
//!   synthetic tweet stream through a
//!   [`StreamingGraph`](graphct_stream::StreamingGraph) with a sliding
//!   window, exporting ingest watermark / throughput / lag / window
//!   gauges, publishing query-plane snapshots every `--snapshot-every`
//!   batches, with graceful SIGINT drain.
//!
//! Legacy endpoints (exact wire formats preserved through the router):
//! `/metrics` (Prometheus text exposition, live mid-session, including
//! the watchdog's `graphct_staleness_seconds` /
//! `graphct_stall_seconds_total` float gauges), `/healthz` (`200 ok`
//! serving, `503 stalled: ...` when the ingest watchdog trips, `503
//! draining` during shutdown), `/progress` (JSON: span stacks, kernel
//! progress, ETAs), `/profile` (live folded stacks from the continuous
//! wall-clock sampler; `?format=json` and `?format=top` variants), and
//! `/pause` + `/resume` (freeze ingest between batches — the
//! stall-injection hook the watchdog tests lean on).
//!
//! Query endpoints: `/v1/query/topk`, `/v1/query/component`,
//! `/v1/query/degree`, `/v1/query/ego`, `/v1/snapshot`, and
//! `/v1/snapshot/refresh` — see [`query`] for the table.

pub mod http;
pub mod progress;
pub mod query;
pub mod router;
pub mod serve;
pub mod watchdog;

pub use http::{HttpServer, Response};
pub use progress::ProgressTracker;
pub use query::{bc_seed, query_bc_config, QueryPlane};
pub use router::{envelope_error, envelope_ok, RouteHandler, RouteRequest, Router};
pub use serve::{
    install_sigint_handler, sigint_received, start, IngestStats, ServeConfig, ServeHandle,
};
pub use watchdog::{Watchdog, WatchdogStatus};
