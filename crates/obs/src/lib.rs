//! # graphct-obs — the live monitoring plane
//!
//! The paper's motivating scenario is *near-real-time* crisis monitoring
//! (tracking `#atlflood` as the flood unfolds, §III-A-2); this crate
//! turns the flush-at-exit telemetry of `graphct-trace` into an
//! operational plane you can watch while the analysis runs:
//!
//! * [`http`] — a std-only HTTP/1.1 exporter (no new dependencies; the
//!   shims-only policy holds);
//! * [`progress`] — a sink deriving per-kernel percent-complete and ETA
//!   from the telemetry the kernels already emit;
//! * [`serve`] — the `graphct serve` driver: paced batches of the
//!   synthetic tweet stream through a
//!   [`StreamingGraph`](graphct_stream::StreamingGraph) with a sliding
//!   window, exporting ingest watermark / throughput / lag / window
//!   gauges, with graceful SIGINT drain.
//!
//! Endpoints: `/metrics` (Prometheus text exposition, live mid-session,
//! including the watchdog's `graphct_staleness_seconds` /
//! `graphct_stall_seconds_total` float gauges, published through the
//! metric registry like every other series), `/healthz` (`200 ok`
//! serving, `503 stalled: ...` when the ingest watchdog trips, `503
//! draining` during shutdown), `/progress` (JSON: span stacks, kernel
//! progress, ETAs), `/profile` (live folded stacks from the continuous
//! wall-clock sampler; `?format=json` and `?format=top` variants), and
//! `/pause` + `/resume` (freeze ingest between batches — the
//! stall-injection hook the watchdog tests lean on).

pub mod http;
pub mod progress;
pub mod serve;
pub mod watchdog;

pub use http::{HttpServer, Response};
pub use progress::ProgressTracker;
pub use serve::{
    install_sigint_handler, sigint_received, start, IngestStats, ServeConfig, ServeHandle,
};
pub use watchdog::{Watchdog, WatchdogStatus};
