//! Method + path-pattern routing for the serve plane.
//!
//! PRs 3–8 accreted endpoints as an ad-hoc `match` on the raw path,
//! which was fine for four read-only pages but collapses once the query
//! plane adds parameterized `/v1/...` routes.  This module is the small,
//! uniform replacement: a [`Router`] maps `(method, path pattern)` to a
//! boxed handler, patterns may carry `:param` segments, and handlers
//! read positional params and `?key=value` query params off a
//! [`RouteRequest`].
//!
//! Dispatch semantics preserve the pre-router wire behavior exactly
//! (asserted by `tests/query.rs::legacy_wire_formats_are_unchanged`):
//! an unknown path answers `404 not found`, and any non-`GET` method
//! answers `405 method not allowed` whether or not the path exists.
//!
//! The module also owns the versioned JSON envelope every `/v1/*`
//! response is wrapped in:
//!
//! ```json
//! {"v":1,"epoch":12,"staleness_s":0.041,"data":{...}}
//! {"v":1,"epoch":12,"staleness_s":0.041,"error":"no such vertex"}
//! ```

use crate::http::Response;

/// One parsed request, as seen by a route handler.
pub struct RouteRequest<'a> {
    /// The request path (no query string).
    pub path: &'a str,
    /// Raw query string (without the `?`, empty when absent).
    pub query: &'a str,
    params: Vec<(&'a str, &'a str)>,
}

impl<'a> RouteRequest<'a> {
    /// The value a `:name` pattern segment captured, if any.
    pub fn param(&self, name: &str) -> Option<&'a str> {
        self.params
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| *v)
    }

    /// The first `name=value` pair of the query string, if any.
    pub fn query_param(&self, name: &str) -> Option<&'a str> {
        self.query
            .split('&')
            .find_map(|kv| kv.strip_prefix(name)?.strip_prefix('='))
    }
}

/// A route handler.  Blanket-implemented for closures, so routes are
/// registered as `router.get("/v1/query/topk", move |req| ...)`.
pub trait RouteHandler: Send + Sync {
    /// Answer `req`.
    fn call(&self, req: &RouteRequest<'_>) -> Response;
}

impl<F> RouteHandler for F
where
    F: Fn(&RouteRequest<'_>) -> Response + Send + Sync,
{
    fn call(&self, req: &RouteRequest<'_>) -> Response {
        self(req)
    }
}

enum Segment {
    Literal(String),
    Param(String),
}

struct Route {
    method: &'static str,
    segments: Vec<Segment>,
    handler: Box<dyn RouteHandler>,
}

impl Route {
    /// Match `path` against the pattern, returning captured params
    /// (names borrow the route, values borrow the path).
    fn matches<'s, 'a>(&'s self, path: &'a str) -> Option<Vec<(&'s str, &'a str)>> {
        let mut got = path.trim_start_matches('/').split('/');
        let mut params = Vec::new();
        for seg in &self.segments {
            let part = got.next()?;
            match seg {
                Segment::Literal(lit) if lit == part => {}
                Segment::Literal(_) => return None,
                Segment::Param(name) if !part.is_empty() => {
                    params.push((name.as_str(), part));
                }
                Segment::Param(_) => return None,
            }
        }
        if got.next().is_some() {
            return None; // path has extra segments
        }
        Some(params)
    }
}

/// Method + path-pattern router.
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl Router {
    /// An empty router (dispatches everything to 404/405).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a `GET` route.  `pattern` is `/`-separated; segments
    /// starting with `:` capture the matched path segment under that
    /// name (e.g. `/v1/query/:kind`).
    pub fn get(
        mut self,
        pattern: &str,
        handler: impl Fn(&RouteRequest<'_>) -> Response + Send + Sync + 'static,
    ) -> Self {
        let segments = pattern
            .trim_start_matches('/')
            .split('/')
            .map(|s| match s.strip_prefix(':') {
                Some(name) => Segment::Param(name.to_owned()),
                None => Segment::Literal(s.to_owned()),
            })
            .collect();
        self.routes.push(Route {
            method: "GET",
            segments,
            handler: Box::new(handler),
        });
        self
    }

    /// Route a request.  Unknown paths answer `404 not found`; any
    /// non-`GET` method answers `405 method not allowed` (the serve
    /// plane is read-only), matching the pre-router exporter's wire
    /// behavior byte for byte.
    pub fn dispatch(&self, method: &str, path: &str, query: &str) -> Response {
        if method != "GET" {
            return Response::text(405, "method not allowed\n");
        }
        for route in &self.routes {
            if route.method != method {
                continue;
            }
            if let Some(params) = route.matches(path) {
                let req = RouteRequest {
                    path,
                    query,
                    params,
                };
                return route.handler.call(&req);
            }
        }
        Response::not_found()
    }
}

/// Format a staleness duration as the envelope's `staleness_s` field
/// (fractional seconds, millisecond precision — staleness is an
/// operational signal, not an oracle-checked quantity).
pub fn staleness_s(staleness: std::time::Duration) -> String {
    format!("{:.3}", staleness.as_secs_f64())
}

/// The versioned success envelope: `data_json` must already be valid
/// JSON (the handlers hand-format it; the workspace has no serializer).
pub fn envelope_ok(epoch: u64, staleness: std::time::Duration, data_json: &str) -> Response {
    Response::json(format!(
        "{{\"v\":1,\"epoch\":{epoch},\"staleness_s\":{},\"data\":{data_json}}}",
        staleness_s(staleness)
    ))
}

/// The versioned error envelope, carried on a non-200 status.
pub fn envelope_error(
    status: u16,
    epoch: u64,
    staleness: std::time::Duration,
    message: &str,
) -> Response {
    let mut escaped = String::with_capacity(message.len());
    graphct_trace::value::write_json_string(message, &mut escaped);
    Response {
        status,
        content_type: "application/json",
        body: format!(
            "{{\"v\":1,\"epoch\":{epoch},\"staleness_s\":{},\"error\":{escaped}}}",
            staleness_s(staleness)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router() -> Router {
        Router::new()
            .get("/healthz", |_req| Response::text(200, "ok\n"))
            .get("/v1/query/:kind", |req| {
                Response::text(
                    200,
                    format!(
                        "kind={} k={}\n",
                        req.param("kind").unwrap_or("?"),
                        req.query_param("k").unwrap_or("-")
                    ),
                )
            })
    }

    #[test]
    fn literal_and_param_routes_dispatch() {
        let r = router();
        assert_eq!(r.dispatch("GET", "/healthz", "").body, "ok\n");
        assert_eq!(
            r.dispatch("GET", "/v1/query/topk", "k=5&x=1").body,
            "kind=topk k=5\n"
        );
        assert_eq!(
            r.dispatch("GET", "/v1/query/ego", "").body,
            "kind=ego k=-\n"
        );
    }

    #[test]
    fn unknown_paths_404_and_non_get_405() {
        let r = router();
        assert_eq!(r.dispatch("GET", "/nope", "").status, 404);
        assert_eq!(r.dispatch("GET", "/v1/query", "").status, 404, "too short");
        assert_eq!(
            r.dispatch("GET", "/v1/query/topk/extra", "").status,
            404,
            "too long"
        );
        assert_eq!(r.dispatch("POST", "/healthz", "").status, 405);
        assert_eq!(r.dispatch("POST", "/nope", "").status, 405);
    }

    #[test]
    fn empty_param_segment_does_not_match() {
        let r = router();
        assert_eq!(r.dispatch("GET", "/v1/query/", "").status, 404);
    }

    #[test]
    fn envelopes_are_well_formed() {
        let ok = envelope_ok(3, std::time::Duration::from_millis(41), "{\"x\":1}");
        assert_eq!(ok.status, 200);
        assert_eq!(
            ok.body,
            "{\"v\":1,\"epoch\":3,\"staleness_s\":0.041,\"data\":{\"x\":1}}"
        );
        let err = envelope_error(404, 0, std::time::Duration::ZERO, "no such vertex \"@x\"");
        assert_eq!(err.status, 404);
        assert!(err.body.contains("\"error\":\"no such vertex \\\"@x\\\"\""));
        graphct_trace::json::parse(&ok.body).unwrap();
        graphct_trace::json::parse(&err.body).unwrap();
    }
}
