//! Kernel progress tracking for the `/progress` endpoint.
//!
//! A [`ProgressTracker`] sits in the session's sink chain and watches the
//! telemetry the kernels already emit: `bc` spans carry a `sources` total
//! and tick one `bc_source` point per source, BFS ticks `bfs_level`,
//! k-core ticks `kcore_round`, and the serve ingest loop ticks
//! `ingest_batch` with a batch/total pair.  From those it derives
//! per-kernel percent-complete and a linear-rate ETA, plus the live span
//! stack per thread — rendered as JSON on demand.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, PoisonError};

use graphct_trace::value::write_json_string;
use graphct_trace::{Event, EventKind, MetricSnapshot, Sink};

/// Progress state for one kernel.
#[derive(Debug, Clone, Default)]
struct KernelProgress {
    /// Work units completed (sources, levels, rounds, batches).
    done: u64,
    /// Total units when known up front (`bc` sources, finite serve runs).
    total: Option<u64>,
    /// Timestamp of the first observation, µs since session start.
    first_us: u64,
    /// Timestamp of the latest observation.
    last_us: u64,
}

#[derive(Default)]
struct ProgressState {
    /// Thread ordinal -> open span stack (id, name), outermost first.
    stacks: HashMap<u64, Vec<(u64, String)>>,
    /// Kernel key -> progress.
    kernels: BTreeMap<String, KernelProgress>,
}

/// Which kernel a point event advances: `(key, done, total)`.  `done`
/// `None` means "tick by one"; `total` `None` leaves the total unknown.
fn progress_update(event: &Event) -> Option<(&'static str, Option<u64>, Option<u64>)> {
    match event.name {
        "bc_source" => Some(("bc", None, None)),
        "bfs_level" => Some(("bfs", None, None)),
        "kcore_round" => Some(("kcore", None, None)),
        "components_done" => Some(("components", field_u64(event, "iterations"), None)),
        "ingest_batch" => Some((
            "ingest",
            field_u64(event, "batch"),
            field_u64(event, "total").filter(|&t| t > 0),
        )),
        _ => None,
    }
}

fn field_u64(event: &Event, key: &str) -> Option<u64> {
    event.fields.iter().find_map(|(k, v)| match v {
        graphct_trace::Value::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

/// A [`Sink`] deriving live per-kernel progress from kernel telemetry.
/// Tee it in front of the real sink; read it from the HTTP handler via
/// [`ProgressTracker::render_json`].
#[derive(Default)]
pub struct ProgressTracker {
    state: Mutex<ProgressState>,
    inner: Option<Arc<dyn Sink>>,
}

impl ProgressTracker {
    /// A standalone tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// A tracker that forwards every record (and finish) to `inner`.
    pub fn with_inner(inner: Arc<dyn Sink>) -> Self {
        Self {
            state: Mutex::new(ProgressState::default()),
            inner: Some(inner),
        }
    }

    /// Render the current progress view as a JSON document:
    /// `{"health": ..., "ts_us": ..., "threads": [...], "kernels": {...}}`.
    /// `ts_us` is the newest event timestamp seen (µs since session
    /// start).
    pub fn render_json(&self, health: &str) -> String {
        let state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let ts_us = state.kernels.values().map(|p| p.last_us).max().unwrap_or(0);
        let mut out = String::with_capacity(256);
        out.push_str("{\"health\":");
        write_json_string(health, &mut out);
        out.push_str(&format!(",\"ts_us\":{ts_us}"));

        out.push_str(",\"threads\":[");
        let mut threads: Vec<(&u64, &Vec<(u64, String)>)> = state
            .stacks
            .iter()
            .filter(|(_, stack)| !stack.is_empty())
            .collect();
        threads.sort_by_key(|(t, _)| **t);
        for (i, (thread, stack)) in threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"thread\":{thread},\"stack\":["));
            for (j, (_, name)) in stack.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_json_string(name, &mut out);
            }
            out.push_str("]}");
        }
        out.push(']');

        out.push_str(",\"kernels\":{");
        for (i, (key, p)) in state.kernels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(key, &mut out);
            out.push_str(&format!(":{{\"done\":{}", p.done));
            if let Some(total) = p.total {
                out.push_str(&format!(",\"total\":{total}"));
                if total > 0 {
                    let pct = 100.0 * p.done as f64 / total as f64;
                    out.push_str(&format!(",\"pct\":{pct:.1}"));
                }
                if let Some(eta) = eta_seconds(p) {
                    out.push_str(&format!(",\"eta_s\":{eta:.1}"));
                }
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }
}

/// Linear-rate ETA: elapsed µs per completed unit, extrapolated over the
/// remaining units.  Needs a known total and at least one completed unit.
fn eta_seconds(p: &KernelProgress) -> Option<f64> {
    let total = p.total?;
    if p.done == 0 || total <= p.done {
        return None;
    }
    let elapsed_us = p.last_us.saturating_sub(p.first_us);
    let per_unit = elapsed_us as f64 / p.done as f64;
    Some(per_unit * (total - p.done) as f64 / 1e6)
}

impl Sink for ProgressTracker {
    fn record(&self, event: &Event) {
        {
            let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            match event.kind {
                EventKind::SpanEnter => {
                    state
                        .stacks
                        .entry(event.thread)
                        .or_default()
                        .push((event.span, event.name.to_owned()));
                    // A `bc` span announces its source total up front;
                    // entering one resets the kernel's progress.
                    if event.name == "bc" {
                        let total = field_u64(event, "sources");
                        state.kernels.insert(
                            "bc".into(),
                            KernelProgress {
                                done: 0,
                                total,
                                first_us: event.ts_us,
                                last_us: event.ts_us,
                            },
                        );
                    }
                }
                EventKind::SpanExit => {
                    if let Some(stack) = state.stacks.get_mut(&event.thread) {
                        stack.retain(|(id, _)| *id != event.span);
                    }
                }
                EventKind::Point => {
                    if let Some((key, done, total)) = progress_update(event) {
                        let p = state.kernels.entry(key.into()).or_insert(KernelProgress {
                            first_us: event.ts_us,
                            ..KernelProgress::default()
                        });
                        match done {
                            Some(done) => p.done = done,
                            None => p.done += 1,
                        }
                        if total.is_some() {
                            p.total = total;
                        }
                        p.last_us = event.ts_us;
                    }
                }
                EventKind::Histogram | EventKind::Counter => {}
            }
        }
        if let Some(inner) = &self.inner {
            inner.record(event);
        }
    }

    fn finish(&self, metrics: &[MetricSnapshot]) {
        if let Some(inner) = &self.inner {
            inner.finish(metrics);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphct_trace::Value;

    fn event<'a>(
        kind: EventKind,
        name: &'a str,
        span: u64,
        parent: u64,
        ts_us: u64,
        fields: &'a [(&'a str, Value)],
    ) -> Event<'a> {
        Event {
            ts_us,
            kind,
            name,
            span,
            parent,
            thread: 0,
            elapsed_ns: if kind == EventKind::SpanExit {
                Some(0)
            } else {
                None
            },
            fields,
        }
    }

    #[test]
    fn bc_progress_with_eta() {
        let tracker = ProgressTracker::new();
        let sources = [("vertices", Value::U64(100)), ("sources", Value::U64(10))];
        tracker.record(&event(EventKind::SpanEnter, "bc", 1, 0, 0, &sources));
        for i in 0..5u64 {
            let f = [("src", Value::U64(i))];
            tracker.record(&event(
                EventKind::Point,
                "bc_source",
                1,
                0,
                (i + 1) * 1_000_000,
                &f,
            ));
        }
        let json = tracker.render_json("ok");
        let v = graphct_trace::json::parse(&json).unwrap();
        let bc = v.get("kernels").and_then(|k| k.get("bc")).unwrap();
        assert_eq!(bc.get("done").and_then(|d| d.as_u64()), Some(5));
        assert_eq!(bc.get("total").and_then(|t| t.as_u64()), Some(10));
        assert_eq!(bc.get("pct").and_then(|p| p.as_f64()), Some(50.0));
        // 5 sources in 5s -> 1s each -> 5 remaining -> ~5s ETA.
        let eta = bc.get("eta_s").and_then(|e| e.as_f64()).unwrap();
        assert!((eta - 5.0).abs() < 0.5, "eta {eta}");
        // The bc span is still open on thread 0.
        let threads = v.get("threads").and_then(|t| t.as_arr()).unwrap();
        assert_eq!(
            threads[0].get("stack").and_then(|s| s.as_arr()).unwrap()[0].as_str(),
            Some("bc")
        );
    }

    #[test]
    fn ingest_progress_uses_batch_and_total_fields() {
        let tracker = ProgressTracker::new();
        let f = [("batch", Value::U64(7)), ("total", Value::U64(50))];
        tracker.record(&event(EventKind::Point, "ingest_batch", 0, 0, 10, &f));
        let json = tracker.render_json("ok");
        let v = graphct_trace::json::parse(&json).unwrap();
        let ingest = v.get("kernels").and_then(|k| k.get("ingest")).unwrap();
        assert_eq!(ingest.get("done").and_then(|d| d.as_u64()), Some(7));
        assert_eq!(ingest.get("total").and_then(|t| t.as_u64()), Some(50));
        assert_eq!(v.get("health").and_then(|h| h.as_str()), Some("ok"));
    }

    #[test]
    fn span_exit_pops_stack() {
        let tracker = ProgressTracker::new();
        tracker.record(&event(EventKind::SpanEnter, "outer", 1, 0, 0, &[]));
        tracker.record(&event(EventKind::SpanExit, "outer", 1, 0, 5, &[]));
        let json = tracker.render_json("ok");
        let v = graphct_trace::json::parse(&json).unwrap();
        assert!(v
            .get("threads")
            .and_then(|t| t.as_arr())
            .unwrap()
            .is_empty());
    }
}
