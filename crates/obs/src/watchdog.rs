//! Ingest stall detection for `graphct serve`.
//!
//! The watchdog tracks the last time the ingest loop completed a batch
//! (the *watermark*).  When no batch lands within the configured
//! deadline the serve instance is **stalled**: `/healthz` degrades to
//! 503 with a reason, and the scrape grows a monotone
//! `graphct_stall_seconds_total` counter plus a
//! `graphct_staleness_seconds` gauge (now − watermark).
//!
//! All state transitions are driven by explicit `Instant`s so tests can
//! replay schedules deterministically; the serve heartbeat thread just
//! calls [`Watchdog::tick`] with the current time every few hundred
//! milliseconds.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use graphct_trace::GaugeF64;

/// Seconds since the newest fully ingested batch, published as a
/// first-class float gauge so it flows through `Registry::snapshot()`
/// and the validated exposition path.
pub static STALENESS_SECONDS: GaugeF64 = GaugeF64::new(
    "staleness_seconds",
    "Seconds since the newest fully ingested batch (now - watermark)",
);

/// Monotone seconds spent past the ingest stall deadline.
pub static STALL_SECONDS_TOTAL: GaugeF64 = GaugeF64::monotone(
    "stall_seconds_total",
    "Seconds spent past the ingest stall deadline",
);

/// A point-in-time view of the watchdog, as reported to `/healthz` and
/// the `/metrics` scrape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogStatus {
    /// Is the ingest loop past its deadline?
    pub stalled: bool,
    /// Seconds since the last fully ingested batch (now − watermark).
    /// Before the first batch this measures from watchdog creation.
    pub staleness: Duration,
    /// Total time spent past the deadline, across every stall so far
    /// (monotone; keeps growing while a stall is open).
    pub stall_total: Duration,
}

struct Inner {
    /// Watermark: when the newest batch finished (creation time before
    /// the first batch, so an ingest loop that never starts still
    /// trips the deadline).
    last_progress: Instant,
    /// Closed stall intervals, summed.  The currently open stall (if
    /// any) is derived from `last_progress` at query time.
    closed_stall: Duration,
}

/// Deadline-based stall detector shared between the ingest loop, the
/// heartbeat thread, and the HTTP handler.
pub struct Watchdog {
    timeout: Duration,
    inner: Mutex<Inner>,
}

impl Watchdog {
    /// A watchdog whose deadline starts counting from `now`.
    pub fn new(timeout: Duration, now: Instant) -> Self {
        Self {
            timeout,
            inner: Mutex::new(Inner {
                last_progress: now,
                closed_stall: Duration::ZERO,
            }),
        }
    }

    /// The configured stall deadline.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// Record that a batch finished at `now`: advances the watermark
    /// and, if a stall was open, closes it (folding the elapsed excess
    /// into the monotone total).
    pub fn note_batch(&self, now: Instant) {
        let mut inner = self.inner.lock().expect("watchdog lock");
        let staleness = now.saturating_duration_since(inner.last_progress);
        if staleness > self.timeout {
            inner.closed_stall += staleness - self.timeout;
        }
        inner.last_progress = now;
    }

    /// Evaluate the deadline at `now`.  Pure read — the heartbeat calls
    /// this periodically, and `/healthz` / `/metrics` call it per
    /// request, so status never lags the wall clock.
    pub fn tick(&self, now: Instant) -> WatchdogStatus {
        let inner = self.inner.lock().expect("watchdog lock");
        let staleness = now.saturating_duration_since(inner.last_progress);
        let open = staleness.saturating_sub(self.timeout);
        WatchdogStatus {
            stalled: staleness > self.timeout,
            staleness,
            stall_total: inner.closed_stall + open,
        }
    }
}

impl WatchdogStatus {
    /// Publish this status into the registry's float metrics (no-op
    /// while no trace session is active, like every metric write).
    pub fn publish(&self) {
        STALENESS_SECONDS.set(self.staleness.as_secs_f64());
        STALL_SECONDS_TOTAL.set(self.stall_total.as_secs_f64());
    }

    /// The `/healthz` body for a stalled instance.
    pub fn stall_reason(&self) -> String {
        format!(
            "stalled: no ingest batch for {:.1}s\n",
            self.staleness.as_secs_f64()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(base: Instant, ms: u64) -> Instant {
        base + Duration::from_millis(ms)
    }

    #[test]
    fn fresh_watchdog_is_healthy() {
        let t0 = Instant::now();
        let dog = Watchdog::new(Duration::from_millis(100), t0);
        let s = dog.tick(at(t0, 50));
        assert!(!s.stalled);
        assert_eq!(s.staleness, Duration::from_millis(50));
        assert_eq!(s.stall_total, Duration::ZERO);
    }

    #[test]
    fn deadline_overrun_stalls_and_recovers() {
        let t0 = Instant::now();
        let dog = Watchdog::new(Duration::from_millis(100), t0);
        dog.note_batch(at(t0, 40));

        // 150ms after the last batch: 50ms past deadline.
        let s = dog.tick(at(t0, 190));
        assert!(s.stalled, "past deadline must stall");
        assert_eq!(s.staleness, Duration::from_millis(150));
        assert_eq!(s.stall_total, Duration::from_millis(50));

        // A batch lands: stall closes, watermark advances, healthy again.
        dog.note_batch(at(t0, 240));
        let s = dog.tick(at(t0, 250));
        assert!(!s.stalled, "fresh batch must clear the stall");
        assert_eq!(s.staleness, Duration::from_millis(10));
        assert_eq!(
            s.stall_total,
            Duration::from_millis(100),
            "closed stall keeps the full excess (240 - 40 - 100)"
        );
    }

    #[test]
    fn staleness_is_monotone_between_batches() {
        let t0 = Instant::now();
        let dog = Watchdog::new(Duration::from_millis(100), t0);
        dog.note_batch(at(t0, 10));
        let mut prev = Duration::ZERO;
        for ms in [20, 50, 90, 111, 200, 500] {
            let s = dog.tick(at(t0, ms));
            assert!(
                s.staleness >= prev,
                "staleness must not decrease without a batch ({ms}ms)"
            );
            prev = s.staleness;
        }
        // A batch resets staleness — the only event allowed to.
        dog.note_batch(at(t0, 600));
        assert!(dog.tick(at(t0, 601)).staleness < prev);
    }

    #[test]
    fn stall_total_is_monotone_across_stalls() {
        let t0 = Instant::now();
        let dog = Watchdog::new(Duration::from_millis(100), t0);
        let mut prev = Duration::ZERO;
        // Two stalls separated by a recovery; the counter never drops.
        for ms in [150, 180, 250, 260, 420, 500] {
            if ms == 250 || ms == 420 {
                dog.note_batch(at(t0, ms));
            }
            let s = dog.tick(at(t0, ms));
            assert!(s.stall_total >= prev, "stall total must be monotone");
            prev = s.stall_total;
        }
        // First stall opened at creation, closed by the batch at 250ms
        // (150ms excess); second closed at 420ms (170ms staleness, 70ms
        // excess).
        assert_eq!(prev, Duration::from_millis(220));
    }

    #[test]
    fn stall_reason_names_the_staleness() {
        let t0 = Instant::now();
        let dog = Watchdog::new(Duration::from_millis(100), t0);
        let s = dog.tick(at(t0, 1500));
        assert!(s.stalled);
        assert_eq!(s.stall_reason(), "stalled: no ingest batch for 1.5s\n");
    }
}
