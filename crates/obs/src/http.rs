//! A minimal std-only HTTP/1.1 server.
//!
//! The shims-only policy rules out hyper/axum; the exporter needs exactly
//! one thing — answering small `GET` requests with small text bodies — so
//! a nonblocking accept loop on [`TcpListener`] plus per-request blocking
//! I/O with short timeouts covers it.  One thread, one connection at a
//! time: Prometheus scrapes are serial and tiny, and `/progress` readers
//! are humans with `curl`.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// An HTTP response the route handler produces.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A plaintext response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// The Prometheus text exposition content type.
    pub fn metrics(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `404 Not Found` response.
    pub fn not_found() -> Self {
        Self::text(404, "not found\n")
    }
}

/// The route handler: request path and raw query string (without the
/// `?`, empty when absent) in, [`Response`] out.
pub type Handler = dyn Fn(&str, &str) -> Response + Send + Sync;

/// A background HTTP server; dropping (or [`stop`](HttpServer::stop)ping)
/// it shuts the accept loop down and joins the thread.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// requests through `handler` on a background thread.
    pub fn bind(addr: &str, handler: Arc<Handler>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("graphct-obs-http".into())
            .spawn(move || {
                // Register with the continuous profiler so its (mostly
                // idle) time shows up under a named thread.
                graphct_trace::register_current_thread();
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = handle_connection(stream, &handler);
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            if stop_flag.load(Ordering::Relaxed) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => {
                            if stop_flag.load(Ordering::Relaxed) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
            })?;
        Ok(HttpServer {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the server thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Arc<Handler>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read until the end of the request head (or a small cap — the
    // exporter serves GETs with no body).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    // Split the query string off the path (`/profile?format=json`).
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };

    let response = if method != "GET" {
        Response::text(405, "method not allowed\n")
    } else {
        handler(path, query)
    };
    write_response(&mut stream, &response)
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "",
    };
    let header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let status: u16 = text
            .lines()
            .next()
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|s| s.parse().ok())
            .unwrap();
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_routes_and_404s() {
        let server = HttpServer::bind(
            "127.0.0.1:0",
            Arc::new(|path: &str, query: &str| match path {
                "/hello" if query.is_empty() => Response::text(200, "hi\n"),
                "/hello" => Response::text(200, format!("hi query={query}\n")),
                _ => Response::not_found(),
            }),
        )
        .unwrap();
        let addr = server.local_addr();
        assert_eq!(get(addr, "/hello"), (200, "hi\n".to_owned()));
        assert_eq!(
            get(addr, "/hello?x=1"),
            (200, "hi query=x=1\n".to_owned()),
            "query string reaches the handler"
        );
        assert_eq!(get(addr, "/missing").0, 404);
        server.stop();
        // Port is released after stop.
        assert!(TcpStream::connect(addr).is_err());
    }
}
