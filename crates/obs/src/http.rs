//! A minimal std-only HTTP/1.1 server.
//!
//! The shims-only policy rules out hyper/axum; the serve plane needs
//! exactly one thing — answering small `GET` requests with small text
//! bodies — so a nonblocking accept loop on [`TcpListener`] plus
//! per-request blocking I/O with short timeouts covers it.
//!
//! The accept thread never runs handlers: accepted connections are
//! handed to a small worker pool over a channel, so a slow query (a
//! sampled betweenness run can take tens of milliseconds) cannot block
//! the next `/metrics` scrape or `/healthz` probe.  Prometheus scrapes
//! and `curl`ing humans shared one thread fine; concurrent `/v1/query/*`
//! clients are the reason the pool exists.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// An HTTP response the route handler produces.
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Content-Type header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A plaintext response.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "application/json",
            body: body.into(),
        }
    }

    /// The Prometheus text exposition content type.
    pub fn metrics(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into(),
        }
    }

    /// A `404 Not Found` response.
    pub fn not_found() -> Self {
        Self::text(404, "not found\n")
    }
}

/// The route handler: request method, path, and raw query string
/// (without the `?`, empty when absent) in, [`Response`] out.  Method
/// handling (405s) lives here — in practice in the
/// [`Router`](crate::router::Router) — not in the transport.
pub type Handler = dyn Fn(&str, &str, &str) -> Response + Send + Sync;

/// A background HTTP server; dropping (or [`stop`](HttpServer::stop)ping)
/// it shuts the accept loop down and joins all threads.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` with a single worker (plenty for pure metrics
    /// exporting; `graphct serve` uses [`bind_pooled`](Self::bind_pooled)).
    pub fn bind(addr: &str, handler: Arc<Handler>) -> std::io::Result<HttpServer> {
        Self::bind_pooled(addr, handler, 1)
    }

    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// requests through `handler` on a pool of `workers` threads fed by
    /// a dedicated accept thread.
    pub fn bind_pooled(
        addr: &str,
        handler: Arc<Handler>,
        workers: usize,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = std::sync::mpsc::channel();
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let rx = Arc::clone(&rx);
            let handler = Arc::clone(&handler);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("graphct-obs-http-{i}"))
                    .spawn(move || {
                        // Register with the continuous profiler so query
                        // time shows up under a named thread.
                        graphct_trace::register_current_thread();
                        loop {
                            // Hold the receiver lock only for the take;
                            // handling runs unlocked so workers overlap.
                            let next = rx.lock().expect("http receiver poisoned").recv();
                            match next {
                                Ok(stream) => {
                                    let _ = handle_connection(stream, &handler);
                                }
                                Err(_) => break, // accept thread gone: drain done
                            }
                        }
                    })?,
            );
        }

        let stop_flag = Arc::clone(&stop);
        let accept = std::thread::Builder::new()
            .name("graphct-obs-http".into())
            .spawn(move || {
                graphct_trace::register_current_thread();
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if tx.send(stream).is_err() {
                                break; // no workers left
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            if stop_flag.load(Ordering::Relaxed) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => {
                            if stop_flag.load(Ordering::Relaxed) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(5));
                        }
                    }
                }
                // Dropping `tx` here closes the channel: workers finish
                // whatever was already accepted, then exit.
            })?;
        Ok(HttpServer {
            addr: local,
            stop,
            accept: Some(accept),
            workers: pool,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight connections, and join all
    /// threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.accept.take() {
            let _ = thread.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, handler: &Arc<Handler>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read until the end of the request head (or a small cap — the
    // exporter serves GETs with no body).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head);
    let request_line = head.lines().next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default();
    let target = parts.next().unwrap_or_default();
    // Split the query string off the path (`/profile?format=json`).
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    };

    let response = handler(method, path, query);
    write_response(&mut stream, &response)
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "",
    };
    let header = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        response.body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let status: u16 = text
            .lines()
            .next()
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|s| s.parse().ok())
            .unwrap();
        let body = text
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn test_handler() -> Arc<Handler> {
        Arc::new(
            |method: &str, path: &str, query: &str| match (method, path) {
                ("GET", "/hello") if query.is_empty() => Response::text(200, "hi\n"),
                ("GET", "/hello") => Response::text(200, format!("hi query={query}\n")),
                ("GET", _) => Response::not_found(),
                _ => Response::text(405, "method not allowed\n"),
            },
        )
    }

    #[test]
    fn serves_routes_and_404s() {
        let server = HttpServer::bind("127.0.0.1:0", test_handler()).unwrap();
        let addr = server.local_addr();
        assert_eq!(get(addr, "/hello"), (200, "hi\n".to_owned()));
        assert_eq!(
            get(addr, "/hello?x=1"),
            (200, "hi query=x=1\n".to_owned()),
            "query string reaches the handler"
        );
        assert_eq!(get(addr, "/missing").0, 404);
        server.stop();
        // Port is released after stop.
        assert!(TcpStream::connect(addr).is_err());
    }

    #[test]
    fn pooled_workers_answer_concurrent_requests() {
        let server = HttpServer::bind_pooled("127.0.0.1:0", test_handler(), 4).unwrap();
        let addr = server.local_addr();
        let threads: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(move || get(addr, "/hello")))
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), (200, "hi\n".to_owned()));
        }
        server.stop();
        assert!(TcpStream::connect(addr).is_err());
    }
}
