//! The `graphct serve` driver: stream the synthetic tweet corpus through
//! a [`StreamingGraph`] in paced batches while exporting live metrics.
//!
//! One background thread runs the ingest loop (and owns the trace
//! [`Session`] — sessions must start and finish on the same thread);
//! the HTTP worker pool answers `/metrics`, `/healthz`, `/progress`,
//! and the `/v1/*` query plane from shared [`Registry`] /
//! [`ProgressTracker`] / [`SnapshotCell`] handles, dispatched through
//! the [`Router`].  Every `--snapshot-every` batches (or on
//! `/v1/snapshot/refresh` demand) the loop freezes the streaming graph
//! into an epoch-tagged CSR snapshot for the query plane.  Shutdown is
//! two-phase so health can be observed flipping: `begin_shutdown` marks
//! the exporter as draining (healthz goes 503) and tells the ingest loop
//! to stop; `wait` joins the loop — which finishes the session, flushing
//! any `--trace-out` sink — then stops the HTTP server.

use std::collections::{HashMap, VecDeque};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use graphct_core::{VertexId, VertexLabels};
use graphct_stream::telemetry as ingest_metrics;
use graphct_stream::{IncrementalComponents, Snapshot, SnapshotCell, StreamingGraph};
use graphct_trace::{render_prometheus, Histogram, JsonLinesSink, Registry, Session, Sink};
use graphct_twitter::parse::mentions;
use graphct_twitter::{generate_stream, DatasetProfile};

use crate::http::{HttpServer, Response};
use crate::progress::ProgressTracker;
use crate::query::QueryPlane;
use crate::router::Router;
use crate::watchdog::Watchdog;

/// Wall-clock nanoseconds spent rendering each `/metrics` scrape
/// (registry snapshot + Prometheus exposition + watchdog lines).
static SCRAPE_NS: Histogram = Histogram::new(
    "scrape_ns",
    "Nanoseconds to render one /metrics scrape (snapshot + exposition)",
);

/// Configuration for one serve run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Dataset profile driving the synthetic generator.
    pub profile: DatasetProfile,
    /// Generator seed; pass `p` regenerates with `seed + p` so an
    /// endless run keeps producing fresh interactions.
    pub seed: u64,
    /// Mention edges per batch.
    pub batch_size: usize,
    /// Batches to ingest; `0` = run until shutdown (SIGINT).
    pub batches: u64,
    /// Pacing: target milliseconds between batch starts (`0` = flat out).
    pub interval_ms: u64,
    /// Sliding window length in batches; edges idle for longer age out.
    pub window_batches: usize,
    /// Optional JSON-lines trace tee.
    pub trace_out: Option<PathBuf>,
    /// Watchdog deadline: if no batch completes within this many
    /// milliseconds, `/healthz` degrades to `503 stalled` until ingest
    /// resumes (`0` disables the watchdog).
    pub stall_timeout_ms: u64,
    /// Continuous-profiler sampling rate for the `/profile` endpoint
    /// (`0` disables the sampler).  Defaults to 97 Hz — prime, so the
    /// sampler cannot beat against the 200 ms watchdog heartbeat.
    pub profile_hz: u32,
    /// Freeze a query-plane snapshot every this many batches (`0`
    /// disables periodic freezes; `/v1/snapshot/refresh` still works).
    pub snapshot_every: u64,
    /// HTTP worker threads answering queries off the accept thread.
    pub query_threads: usize,
    /// Default `k` for `/v1/query/topk` when the client omits `k=`.
    pub topk: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:9898".into(),
            profile: DatasetProfile::atlflood(),
            seed: 42,
            batch_size: 64,
            batches: 0,
            interval_ms: 50,
            window_batches: 256,
            trace_out: None,
            stall_timeout_ms: 10_000,
            profile_hz: graphct_trace::profile::DEFAULT_HZ,
            snapshot_every: 8,
            query_threads: 2,
            topk: 10,
        }
    }
}

/// Final ingest totals, returned by [`ServeHandle::wait`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStats {
    /// Batches fully ingested.
    pub batches: u64,
    /// Mention edges processed (inserted + duplicates + self-mentions).
    pub mentions: u64,
    /// New edges inserted.
    pub edges_inserted: u64,
    /// Edges aged out of the window.
    pub edges_expired: u64,
    /// Mentions the streaming graph rejected (e.g. out-of-range ids).
    /// Rejected pairs are *not* window-tracked: an edge that was never
    /// inserted must never schedule a deletion.
    pub ingest_errors: u64,
}

/// A running serve instance.
pub struct ServeHandle {
    http: HttpServer,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    snapshots: Arc<SnapshotCell>,
    ingest: Option<JoinHandle<IngestStats>>,
    heartbeat: Option<JoinHandle<()>>,
    /// Did this serve instance issue a profiler start (to be undone on
    /// `wait`)?
    profiling: bool,
}

impl ServeHandle {
    /// The bound HTTP address.
    pub fn local_addr(&self) -> SocketAddr {
        self.http.local_addr()
    }

    /// The current query-plane snapshot — the same freeze the `/v1/*`
    /// endpoints answer from, for in-process oracle checks.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.snapshots.load()
    }

    /// Phase one of shutdown: flip `/healthz` to 503 draining and tell
    /// the ingest loop to stop after its current batch.  The HTTP
    /// endpoints keep answering until [`wait`](ServeHandle::wait).
    pub fn begin_shutdown(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Has the ingest loop exited (finished its batch budget or seen the
    /// shutdown flag)?
    pub fn ingest_finished(&self) -> bool {
        self.ingest.as_ref().is_none_or(JoinHandle::is_finished)
    }

    /// Freeze the ingest loop between batches (the watchdog keeps
    /// running, so a long enough pause trips the stall deadline).  Also
    /// reachable over HTTP as `GET /pause` for stall-injection tests.
    pub fn pause(&self) {
        self.paused.store(true, Ordering::Relaxed);
    }

    /// Resume a paused ingest loop (`GET /resume` over HTTP).
    pub fn resume(&self) {
        self.paused.store(false, Ordering::Relaxed);
    }

    /// Phase two: join the ingest loop (drains the session and any
    /// `--trace-out` sink), then stop the HTTP server.
    pub fn wait(mut self) -> IngestStats {
        self.begin_shutdown();
        // A paused loop would never observe the shutdown flag's batch
        // boundary; release it so drain always completes.
        self.resume();
        let stats = self
            .ingest
            .take()
            .and_then(|h| h.join().ok())
            .unwrap_or_default();
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
        self.http.stop();
        if self.profiling {
            self.profiling = false;
            graphct_trace::profiler().stop();
        }
        stats
    }
}

/// Start serving: bind the exporter, spawn the ingest thread, return
/// immediately.
pub fn start(config: ServeConfig) -> std::io::Result<ServeHandle> {
    let registry = Arc::new(match &config.trace_out {
        Some(path) => Registry::with_inner(Arc::new(JsonLinesSink::create(path)?)),
        None => Registry::new(),
    });
    let progress = Arc::new(ProgressTracker::with_inner(
        Arc::clone(&registry) as Arc<dyn Sink>
    ));
    let shutdown = Arc::new(AtomicBool::new(false));
    let draining = Arc::new(AtomicBool::new(false));
    let paused = Arc::new(AtomicBool::new(false));
    // `0` disables the deadline: Duration::MAX staleness is unreachable.
    let timeout = if config.stall_timeout_ms == 0 {
        Duration::MAX
    } else {
        Duration::from_millis(config.stall_timeout_ms)
    };
    let watchdog = Arc::new(Watchdog::new(timeout, Instant::now()));

    let snapshots = Arc::new(SnapshotCell::new());
    let labels = Arc::new(RwLock::new(VertexLabels::new()));
    let query_plane = Arc::new(QueryPlane::new(
        Arc::clone(&snapshots),
        Arc::clone(&labels),
        config.seed,
        config.topk,
    ));

    // Legacy routes keep their pre-router wire formats byte for byte
    // (asserted by tests/query.rs); the query plane adds the versioned
    // `/v1/*` envelope on top.
    let router = {
        let metrics_registry = Arc::clone(&registry);
        let metrics_watchdog = Arc::clone(&watchdog);
        let healthz_draining = Arc::clone(&draining);
        let healthz_watchdog = Arc::clone(&watchdog);
        let progress_tracker = Arc::clone(&progress);
        let progress_draining = Arc::clone(&draining);
        let progress_watchdog = Arc::clone(&watchdog);
        let pause_flag = Arc::clone(&paused);
        let resume_flag = Arc::clone(&paused);
        let router = Router::new()
            .get("/metrics", move |_req| {
                let scrape_start = graphct_trace::enabled().then(Instant::now);
                // Publish the watchdog's float series before snapshotting
                // so the scrape sees them at wall-clock freshness.
                metrics_watchdog.tick(Instant::now()).publish();
                let body = render_prometheus(&metrics_registry.snapshot());
                if let Some(t) = scrape_start {
                    SCRAPE_NS.record_duration(t.elapsed());
                }
                Response::metrics(body)
            })
            .get("/profile", move |req| profile_response(req.query))
            .get("/healthz", move |_req| {
                if healthz_draining.load(Ordering::Relaxed) {
                    return Response::text(503, "draining\n");
                }
                let status = healthz_watchdog.tick(Instant::now());
                if status.stalled {
                    Response::text(503, status.stall_reason())
                } else {
                    Response::text(200, "ok\n")
                }
            })
            .get("/progress", move |_req| {
                let health = if progress_draining.load(Ordering::Relaxed) {
                    "draining"
                } else if progress_watchdog.tick(Instant::now()).stalled {
                    "stalled"
                } else {
                    "ok"
                };
                Response::json(progress_tracker.render_json(health))
            })
            .get("/pause", move |_req| {
                pause_flag.store(true, Ordering::Relaxed);
                Response::text(200, "paused\n")
            })
            .get("/resume", move |_req| {
                resume_flag.store(false, Ordering::Relaxed);
                Response::text(200, "resumed\n")
            });
        query_plane.routes(router)
    };
    let handler: Arc<crate::http::Handler> =
        Arc::new(move |method: &str, path: &str, query: &str| router.dispatch(method, path, query));
    let http = HttpServer::bind_pooled(&config.addr, handler, config.query_threads.max(1))?;

    // Start (or join) the continuous profiler so `/profile` has live
    // folded stacks from the first scrape; undone in `wait`.
    let profiling = config.profile_hz > 0;
    if profiling {
        graphct_trace::profiler().start(config.profile_hz);
    }

    let ingest = {
        let shutdown = Arc::clone(&shutdown);
        let draining = Arc::clone(&draining);
        let paused = Arc::clone(&paused);
        let watchdog = Arc::clone(&watchdog);
        let snapshots = Arc::clone(&snapshots);
        let labels = Arc::clone(&labels);
        std::thread::Builder::new()
            .name("graphct-obs-ingest".into())
            .spawn(move || {
                ingest_loop(
                    config, progress, shutdown, draining, paused, watchdog, snapshots, labels,
                )
            })?
    };

    // Heartbeat: re-evaluate the deadline every 200ms so stall
    // transitions are observed (and traced) even when nobody scrapes.
    let heartbeat = {
        let shutdown = Arc::clone(&shutdown);
        let watchdog = Arc::clone(&watchdog);
        std::thread::Builder::new()
            .name("graphct-obs-watchdog".into())
            .spawn(move || {
                // Named in the profiler's thread registry so its (mostly
                // idle) samples attribute to "graphct-obs-watchdog".
                graphct_trace::register_current_thread();
                let mut was_stalled = false;
                while !shutdown.load(Ordering::Relaxed) {
                    let status = watchdog.tick(Instant::now());
                    status.publish();
                    if status.stalled != was_stalled {
                        was_stalled = status.stalled;
                        let staleness_ms = status.staleness.as_millis().min(u128::from(u64::MAX));
                        graphct_trace::event!(
                            "watchdog",
                            stalled = u64::from(status.stalled),
                            staleness_ms = staleness_ms as u64,
                        );
                    }
                    std::thread::sleep(Duration::from_millis(200));
                }
            })?
    };

    Ok(ServeHandle {
        http,
        shutdown,
        draining,
        paused,
        snapshots,
        ingest: Some(ingest),
        heartbeat: Some(heartbeat),
        profiling,
    })
}

/// Render the `/profile` endpoint: folded-stack text by default (direct
/// `flamegraph.pl`/speedscope input), `?format=json` for a structured
/// dump with a self-time table, `?format=top` for the human-readable
/// top-N self-time table.
fn profile_response(query: &str) -> Response {
    let prof = graphct_trace::profiler();
    let folded = prof.fold();
    let format = query
        .split('&')
        .find_map(|kv| kv.strip_prefix("format="))
        .unwrap_or("folded");
    match format {
        "json" => Response::json(render_profile_json(prof, &folded)),
        "top" => {
            let mut body = format!(
                "continuous profiler: {} Hz, {} samples, {} truncated\n\n{:<28} {:>10}\n",
                prof.hz(),
                prof.samples_total(),
                prof.truncated_total(),
                "frame (self, on-cpu)",
                "samples",
            );
            for (frame, count) in graphct_trace::profile::self_time_top(&folded, 20) {
                body.push_str(&format!("{frame:<28} {count:>10}\n"));
            }
            Response::text(200, body)
        }
        _ => Response::text(200, graphct_trace::profile::render_folded_counts(&folded)),
    }
}

/// Hand-rolled JSON for the `/profile?format=json` variant (the
/// workspace has no serializer dependency; names are span literals and
/// thread names, escaped defensively).
fn render_profile_json(prof: &graphct_trace::Profiler, folded: &[(String, u64)]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let stacks: Vec<String> = folded
        .iter()
        .map(|(path, count)| format!("{{\"stack\":\"{}\",\"count\":{count}}}", esc(path)))
        .collect();
    let top: Vec<String> = graphct_trace::profile::self_time_top(folded, 20)
        .into_iter()
        .map(|(frame, count)| format!("{{\"frame\":\"{}\",\"count\":{count}}}", esc(&frame)))
        .collect();
    format!(
        "{{\"hz\":{},\"samples_total\":{},\"truncated_total\":{},\"stacks\":[{}],\"self\":[{}]}}",
        prof.hz(),
        prof.samples_total(),
        prof.truncated_total(),
        stacks.join(","),
        top.join(","),
    )
}

/// Expand one corpus pass into (author, mention) screen-name pairs.
fn mention_pairs(profile: &DatasetProfile, seed: u64) -> Vec<(String, String)> {
    let (tweets, _pool) = generate_stream(&profile.config, seed);
    let mut pairs = Vec::new();
    for tweet in &tweets {
        for handle in mentions(&tweet.text) {
            pairs.push((tweet.author.clone(), handle.to_owned()));
        }
    }
    pairs
}

/// Connected components among vertices that have at least one live edge.
fn window_components(graph: &StreamingGraph) -> (u64, u64) {
    let n = graph.num_vertices();
    let active = (0..n as VertexId).filter(|&v| graph.degree(v) > 0).count();
    let mut uf = IncrementalComponents::new(n);
    let edges = graph.edge_list();
    for &(u, v) in edges.as_slice() {
        uf.union(u, v);
    }
    // num_components counts every interned vertex; subtract the isolated
    // ones to get components among active vertices.
    let comps = uf.num_components().saturating_sub(n - active);
    (active as u64, comps as u64)
}

#[allow(clippy::too_many_arguments)]
fn ingest_loop(
    cfg: ServeConfig,
    sink: Arc<ProgressTracker>,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    paused: Arc<AtomicBool>,
    watchdog: Arc<Watchdog>,
    snapshots: Arc<SnapshotCell>,
    labels: Arc<RwLock<VertexLabels>>,
) -> IngestStats {
    let session = Session::start(sink as Arc<dyn Sink>);
    ingest_metrics::register_ingest_metrics();
    crate::query::register_query_metrics();
    SCRAPE_NS.touch();

    let mut graph = StreamingGraph::new(0);
    // Sliding window bookkeeping: every edge mention lands in the batch
    // that saw it; an edge is deleted when the last batch that mentioned
    // it ages out (LRU semantics over batches).
    let mut last_seen: HashMap<(VertexId, VertexId), u64> = HashMap::new();
    let mut window: VecDeque<(u64, Vec<(VertexId, VertexId)>)> = VecDeque::new();

    let mut pass = 0u64;
    let mut corpus = mention_pairs(&cfg.profile, cfg.seed);
    let mut cursor = 0usize;
    let start = Instant::now();
    let mut stats = IngestStats::default();

    while !shutdown.load(Ordering::Relaxed) && (cfg.batches == 0 || stats.batches < cfg.batches) {
        // Stall injection / operator freeze: hold between batches while
        // paused.  The watermark stops advancing, so the watchdog trips
        // once the pause outlives the deadline.
        while paused.load(Ordering::Relaxed) && !shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(5));
        }
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        let batch = stats.batches;
        // Pacing: batch `i` starts no earlier than `i * interval`.
        if cfg.interval_ms > 0 {
            let scheduled = Duration::from_millis(cfg.interval_ms.saturating_mul(batch));
            let elapsed = start.elapsed();
            if elapsed < scheduled {
                std::thread::sleep(scheduled - elapsed);
            }
        }
        let batch_start = Instant::now();
        let _span = graphct_trace::span!("ingest_batch", batch = batch);

        let mut inserted = 0u64;
        let mut duplicates = 0u64;
        let mut errors = 0u64;
        let mut processed = 0u64;
        let mut batch_edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(cfg.batch_size);
        for _ in 0..cfg.batch_size {
            if cursor >= corpus.len() {
                pass += 1;
                cursor = 0;
                corpus = mention_pairs(&cfg.profile, cfg.seed.wrapping_add(pass));
                if corpus.is_empty() {
                    break;
                }
            }
            let (author, mention) = &corpus[cursor];
            cursor += 1;
            processed += 1;
            // The directory is shared with the query plane (readers
            // resolve `?user=` names); hold the write lock only for the
            // two interns.
            let (u, v, interned) = {
                let mut directory = labels.write().expect("labels poisoned");
                (
                    directory.intern(author),
                    directory.intern(mention),
                    directory.len(),
                )
            };
            if u == v {
                continue; // self-mention; the streaming graph is simple
            }
            graph.ensure_vertices(interned);
            // Only mentions the graph actually accepted (fresh insert or
            // live duplicate) enter the sliding window: tracking a
            // rejected pair would later schedule a delete_edge for an
            // edge that never existed.
            match graph.insert_edge(u, v) {
                Ok(true) => inserted += 1,
                Ok(false) => duplicates += 1,
                Err(_) => {
                    errors += 1;
                    continue;
                }
            }
            let key = (u.min(v), u.max(v));
            last_seen.insert(key, batch);
            batch_edges.push(key);
        }

        window.push_back((batch, batch_edges));
        while window.len() > cfg.window_batches.max(1) {
            let (aged, edges) = window.pop_front().expect("window is non-empty");
            for key in edges {
                if last_seen.get(&key) == Some(&aged) {
                    if graph.delete_edge(key.0, key.1).unwrap_or(false) {
                        stats.edges_expired += 1;
                        ingest_metrics::INGEST_EDGES_EXPIRED.incr();
                    }
                    last_seen.remove(&key);
                }
            }
        }

        stats.batches += 1;
        stats.mentions += processed;
        stats.edges_inserted += inserted;
        stats.ingest_errors += errors;

        ingest_metrics::INGEST_BATCHES.incr();
        ingest_metrics::INGEST_MENTIONS.add(processed);
        ingest_metrics::INGEST_EDGES_INSERTED.add(inserted);
        ingest_metrics::INGEST_DUPLICATES.add(duplicates);
        ingest_metrics::INGEST_ERRORS.add(errors);
        ingest_metrics::INGEST_WATERMARK_BATCH.set(stats.batches);
        let batch_elapsed = batch_start.elapsed();
        ingest_metrics::INGEST_BATCH_NS.record_duration(batch_elapsed);
        let batch_secs = batch_elapsed.as_secs_f64();
        if batch_secs > 0.0 {
            ingest_metrics::INGEST_EDGES_PER_SEC.set((processed as f64 / batch_secs) as u64);
        }
        let lag_us = if cfg.interval_ms > 0 {
            let scheduled = Duration::from_millis(cfg.interval_ms.saturating_mul(batch));
            start
                .elapsed()
                .saturating_sub(scheduled)
                .as_micros()
                .min(u128::from(u64::MAX)) as u64
        } else {
            0
        };
        ingest_metrics::INGEST_LAG_US.set(lag_us);
        let (active_vertices, components) = window_components(&graph);
        ingest_metrics::WINDOW_VERTICES.set(active_vertices);
        ingest_metrics::WINDOW_EDGES.set(graph.num_edges() as u64);
        ingest_metrics::WINDOW_COMPONENTS.set(components);

        graphct_trace::event!(
            "ingest_batch",
            batch = stats.batches,
            total = cfg.batches,
            mentions = processed,
            inserted = inserted,
            window_edges = graph.num_edges(),
            lag_us = lag_us,
        );
        watchdog.note_batch(Instant::now());

        // Query-plane freeze: every --snapshot-every batches, or sooner
        // when a client asked via /v1/snapshot/refresh.  The freeze sits
        // at the batch boundary, so a snapshot always reflects whole
        // batches (its watermark is exact).
        let periodic_due = cfg.snapshot_every > 0 && stats.batches % cfg.snapshot_every == 0;
        if periodic_due || snapshots.take_refresh_request() {
            let freeze_start = Instant::now();
            let frozen = graph.snapshot();
            let (vertices, edges) = (frozen.num_vertices(), frozen.num_edges());
            let epoch = snapshots.publish(frozen, stats.batches);
            ingest_metrics::SNAPSHOT_REFRESH_NS.record_duration(freeze_start.elapsed());
            ingest_metrics::SNAPSHOT_EPOCH.set(epoch);
            graphct_trace::event!(
                "snapshot_freeze",
                epoch = epoch,
                batch = stats.batches,
                vertices = vertices,
                edges = edges,
            );
        }
    }

    // Drain: flip health first so scrapes observe the transition, then
    // finish the session (flushes the JSONL tee, reports final totals).
    draining.store(true, Ordering::Relaxed);
    session.finish();
    stats
}

/// SIGINT flag for `graphct serve` (set by the installed handler, polled
/// by the CLI's wait loop).
static SIGINT: AtomicBool = AtomicBool::new(false);

/// Install a SIGINT handler that records the signal in a flag instead of
/// killing the process, so serve can drain sinks before exiting.  No-op
/// off Unix.
pub fn install_sigint_handler() {
    #[cfg(unix)]
    {
        extern "C" fn on_sigint(_sig: i32) {
            SIGINT.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT_NUM: i32 = 2;
        unsafe {
            signal(SIGINT_NUM, on_sigint as extern "C" fn(i32) as usize);
        }
    }
}

/// Has SIGINT been received since [`install_sigint_handler`]?
pub fn sigint_received() -> bool {
    SIGINT.load(Ordering::Relaxed)
}
