//! The `/v1/query/*` plane: graph queries answered from frozen
//! snapshots while ingest continues.
//!
//! Every handler loads the current [`Snapshot`] once, answers entirely
//! from that freeze, and stamps the response envelope with the
//! snapshot's epoch and staleness — so a client always knows *which*
//! graph it was answered from and how old that graph is.  Queries are
//! pure functions of `(snapshot, query params, serve seed)`: the
//! integration tests and `repro serve-load` recompute them offline with
//! the same kernels and demand bit-identical answers for the same
//! epoch.
//!
//! Endpoints (all wrapped in the versioned envelope of
//! [`crate::router`]):
//!
//! | route                  | answer                                        |
//! |------------------------|-----------------------------------------------|
//! | `/v1/query/topk`       | top-k influencers by sampled betweenness      |
//! | `/v1/query/component`  | component id + size for a vertex/user         |
//! | `/v1/query/degree`     | degree and reach (component size − 1)         |
//! | `/v1/query/ego`        | one-hop ego net (members + induced edges)     |
//! | `/v1/snapshot`         | current freeze metadata                       |
//! | `/v1/snapshot/refresh` | ask ingest for a fresh freeze next batch      |

use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use graphct_core::{VertexId, VertexLabels};
use graphct_kernels::telemetry::{TRIANGLES_FOUND, TRIANGLE_PASSES};
use graphct_kernels::{
    betweenness_centrality, connected_components, ego_net, forward_triangle_counts, top_k_scores,
    BetweennessConfig,
};
use graphct_stream::{Snapshot, SnapshotCell};
use graphct_trace::Histogram;

use crate::http::Response;
use crate::router::{envelope_error, envelope_ok, RouteRequest, Router};

/// Default source-sample count for `/v1/query/topk` when the client
/// does not pass `samples=`.
pub const DEFAULT_TOPK_SAMPLES: usize = 16;

/// Per-endpoint latency histograms (registered lazily inside the serve
/// session, like the ingest metrics).
pub static QUERY_TOPK_NS: Histogram = Histogram::new(
    "query_topk_ns",
    "Nanoseconds to answer one /v1/query/topk request",
);
/// `/v1/query/component` latency.
pub static QUERY_COMPONENT_NS: Histogram = Histogram::new(
    "query_component_ns",
    "Nanoseconds to answer one /v1/query/component request",
);
/// `/v1/query/degree` latency.
pub static QUERY_DEGREE_NS: Histogram = Histogram::new(
    "query_degree_ns",
    "Nanoseconds to answer one /v1/query/degree request",
);
/// `/v1/query/ego` latency.
pub static QUERY_EGO_NS: Histogram = Histogram::new(
    "query_ego_ns",
    "Nanoseconds to answer one /v1/query/ego request",
);

/// Touch the query-plane histograms so they appear in the first
/// `/metrics` scrape.  Must run inside an active session.
pub fn register_query_metrics() {
    for h in [
        &QUERY_TOPK_NS,
        &QUERY_COMPONENT_NS,
        &QUERY_DEGREE_NS,
        &QUERY_EGO_NS,
    ] {
        h.touch();
    }
    // The ego endpoint drives the triadic kernels; a zero-add registers
    // their counters so the first scrape already exposes them.
    TRIANGLE_PASSES.add(0);
    TRIANGLES_FOUND.add(0);
}

/// The deterministic per-epoch seed for sampled betweenness: queries
/// against the same frozen epoch always sample the same sources, so an
/// offline recompute with the same seed is bit-identical, while new
/// epochs rotate the sample.
pub fn bc_seed(serve_seed: u64, epoch: u64) -> u64 {
    serve_seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The betweenness configuration `/v1/query/topk` runs: `samples`
/// sampled sources under `seed`, MS-BFS batched.  Public so oracle
/// checks recompute with the exact same configuration.
pub fn query_bc_config(samples: usize, seed: u64) -> BetweennessConfig {
    let mut cfg = BetweennessConfig::sampled(samples, seed);
    cfg.batch = samples.clamp(1, graphct_kernels::MAX_BATCH);
    cfg
}

/// Per-epoch memoized component membership: colors (canonical min-id
/// labels, as [`connected_components`] assigns) plus per-color sizes.
pub struct Membership {
    /// `colors[v]` is the component label of vertex `v`.
    pub colors: Vec<VertexId>,
    /// `sizes[c]` is the population of component label `c` (zero for
    /// non-label ids).
    pub sizes: Vec<usize>,
}

/// Shared state behind the `/v1/*` handlers.
pub struct QueryPlane {
    snapshots: Arc<SnapshotCell>,
    labels: Arc<RwLock<VertexLabels>>,
    serve_seed: u64,
    topk_default: usize,
    components: Mutex<Option<(u64, Arc<Membership>)>>,
}

impl QueryPlane {
    /// Build the plane over the serve loop's snapshot cell and label
    /// directory.  `topk_default` is the `k` used when a client omits
    /// `k=` (the CLI's `--topk`).
    pub fn new(
        snapshots: Arc<SnapshotCell>,
        labels: Arc<RwLock<VertexLabels>>,
        serve_seed: u64,
        topk_default: usize,
    ) -> Self {
        Self {
            snapshots,
            labels,
            serve_seed,
            topk_default: topk_default.max(1),
            components: Mutex::new(None),
        }
    }

    /// Component membership for `snap`, computed once per epoch and
    /// shared by `/component` and `/degree` until the next freeze.
    pub fn membership(&self, snap: &Snapshot) -> Arc<Membership> {
        let mut guard = self.components.lock().expect("components cache poisoned");
        if let Some((epoch, m)) = guard.as_ref() {
            if *epoch == snap.epoch {
                return Arc::clone(m);
            }
        }
        let colors = connected_components(&*snap.graph);
        let mut sizes = vec![0usize; colors.len()];
        for &c in &colors {
            sizes[c as usize] += 1;
        }
        let m = Arc::new(Membership { colors, sizes });
        *guard = Some((snap.epoch, Arc::clone(&m)));
        m
    }

    /// Register every `/v1/*` route on `router`.
    pub fn routes(self: &Arc<Self>, router: Router) -> Router {
        let plane = Arc::clone(self);
        let router = router.get("/v1/query/topk", move |req| plane.topk(req));
        let plane = Arc::clone(self);
        let router = router.get("/v1/query/component", move |req| plane.component(req));
        let plane = Arc::clone(self);
        let router = router.get("/v1/query/degree", move |req| plane.degree(req));
        let plane = Arc::clone(self);
        let router = router.get("/v1/query/ego", move |req| plane.ego(req));
        let plane = Arc::clone(self);
        let router = router.get("/v1/snapshot", move |req| plane.snapshot_info(req));
        let plane = Arc::clone(self);
        router.get("/v1/snapshot/refresh", move |req| {
            plane.snapshot_refresh(req)
        })
    }

    fn topk(&self, req: &RouteRequest<'_>) -> Response {
        let timer = graphct_trace::enabled().then(Instant::now);
        let snap = self.snapshots.load();
        let k = match parse_usize(req, "k", self.topk_default) {
            Ok(v) => v,
            Err(resp) => return bad_request(&snap, resp),
        };
        let samples = match parse_usize(req, "samples", DEFAULT_TOPK_SAMPLES) {
            Ok(v) => v,
            Err(resp) => return bad_request(&snap, resp),
        };
        let n = snap.graph.num_vertices();
        let seed = bc_seed(self.serve_seed, snap.epoch);
        let resp = if n == 0 || samples == 0 {
            self.render_topk(&snap, &[], k, samples, seed)
        } else {
            let config = query_bc_config(samples.min(n), seed);
            match betweenness_centrality(&snap.graph, &config) {
                Ok(result) => self.render_topk(&snap, &result.scores, k, samples, seed),
                Err(e) => return envelope_error(400, snap.epoch, snap.staleness(), &e.to_string()),
            }
        };
        if let Some(t) = timer {
            QUERY_TOPK_NS.record_duration(t.elapsed());
        }
        resp
    }

    /// Rank a per-vertex score array and render the `/v1/query/topk`
    /// payload for `snap`.
    ///
    /// Split from the HTTP handler so the non-finite guard is testable
    /// in isolation: the betweenness kernels only produce finite scores,
    /// but a poisoned array must degrade to a `500` error envelope —
    /// never the worker-killing panic the old `partial_cmp` ranking hid
    /// here.  [`top_k_scores`] itself is total over NaN, so ranking
    /// cannot panic either way; the guard keeps garbage from being
    /// served as influence data.
    pub fn render_topk(
        &self,
        snap: &Snapshot,
        scores: &[f64],
        k: usize,
        samples: usize,
        seed: u64,
    ) -> Response {
        if let Some(v) = scores.iter().position(|s| !s.is_finite()) {
            return envelope_error(
                500,
                snap.epoch,
                snap.staleness(),
                &format!("internal error: non-finite betweenness score for vertex {v}"),
            );
        }
        let top = top_k_scores(scores, k);
        let labels = self.labels.read().expect("labels poisoned");
        let entries: Vec<String> = top
            .iter()
            .map(|&(v, score)| {
                format!(
                    "{{\"vertex\":{v},\"user\":{},\"score\":{score}}}",
                    json_name(&labels, v)
                )
            })
            .collect();
        drop(labels);
        let data = format!(
            "{{\"k\":{k},\"samples\":{samples},\"seed\":{seed},\"top\":[{}]}}",
            entries.join(",")
        );
        envelope_ok(snap.epoch, snap.staleness(), &data)
    }

    fn component(&self, req: &RouteRequest<'_>) -> Response {
        let timer = graphct_trace::enabled().then(Instant::now);
        let snap = self.snapshots.load();
        let v = match self.resolve_vertex(req, &snap) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let membership = self.membership(&snap);
        let color = membership.colors[v as usize];
        let size = membership.sizes[color as usize];
        let labels = self.labels.read().expect("labels poisoned");
        let data = format!(
            "{{\"vertex\":{v},\"user\":{},\"component\":{color},\"size\":{size}}}",
            json_name(&labels, v)
        );
        drop(labels);
        if let Some(t) = timer {
            QUERY_COMPONENT_NS.record_duration(t.elapsed());
        }
        envelope_ok(snap.epoch, snap.staleness(), &data)
    }

    fn degree(&self, req: &RouteRequest<'_>) -> Response {
        let timer = graphct_trace::enabled().then(Instant::now);
        let snap = self.snapshots.load();
        let v = match self.resolve_vertex(req, &snap) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let degree = snap.graph.degree(v);
        let membership = self.membership(&snap);
        // Reach: vertices connected to `v` by some path, excluding `v`
        // itself — its component's population minus one.
        let reach = membership.sizes[membership.colors[v as usize] as usize] - 1;
        let labels = self.labels.read().expect("labels poisoned");
        let data = format!(
            "{{\"vertex\":{v},\"user\":{},\"degree\":{degree},\"reach\":{reach}}}",
            json_name(&labels, v)
        );
        drop(labels);
        if let Some(t) = timer {
            QUERY_DEGREE_NS.record_duration(t.elapsed());
        }
        envelope_ok(snap.epoch, snap.staleness(), &data)
    }

    fn ego(&self, req: &RouteRequest<'_>) -> Response {
        let timer = graphct_trace::enabled().then(Instant::now);
        let snap = self.snapshots.load();
        let center = match self.resolve_vertex(req, &snap) {
            Ok(v) => v,
            Err(resp) => return resp,
        };
        let net = ego_net(&snap.graph, center);
        // Local triadic structure of the freeze around the ego: the
        // forward counter runs on the induced net, which inherits the
        // snapshot's sorted-simple witness, so no validation scan.
        let (triangles, clustering) = match forward_triangle_counts(&net.graph) {
            Ok(per_vertex) => {
                let local = net
                    .vertices
                    .binary_search(&center)
                    .expect("center is an ego-net member");
                let t = per_vertex[local];
                let d = net.graph.degree(local as VertexId);
                let c = if d < 2 {
                    0.0
                } else {
                    2.0 * t as f64 / (d * (d - 1)) as f64
                };
                (t, c)
            }
            Err(e) => {
                return envelope_error(
                    500,
                    snap.epoch,
                    snap.staleness(),
                    &format!("internal error: ego triangle count failed: {e}"),
                )
            }
        };
        let labels = self.labels.read().expect("labels poisoned");
        let members: Vec<String> = net
            .vertices
            .iter()
            .map(|&v| format!("{{\"vertex\":{v},\"user\":{}}}", json_name(&labels, v)))
            .collect();
        drop(labels);
        // Induced edges in host ids, each unordered pair reported once.
        let mut edges = Vec::with_capacity(net.graph.num_edges());
        for lu in 0..net.graph.num_vertices() as VertexId {
            for &lv in net.graph.neighbors(lu) {
                if lu < lv {
                    edges.push(format!(
                        "[{},{}]",
                        net.vertices[lu as usize], net.vertices[lv as usize]
                    ));
                }
            }
        }
        let data = format!(
            "{{\"center\":{center},\"triangles\":{triangles},\"clustering\":{clustering},\
             \"members\":[{}],\"edges\":[{}]}}",
            members.join(","),
            edges.join(",")
        );
        if let Some(t) = timer {
            QUERY_EGO_NS.record_duration(t.elapsed());
        }
        envelope_ok(snap.epoch, snap.staleness(), &data)
    }

    fn snapshot_info(&self, _req: &RouteRequest<'_>) -> Response {
        let snap = self.snapshots.load();
        let interned = self.labels.read().expect("labels poisoned").len();
        let data = format!(
            "{{\"watermark_batch\":{},\"vertices\":{},\"edges\":{},\"interned_users\":{interned}}}",
            snap.watermark_batch,
            snap.graph.num_vertices(),
            snap.graph.num_edges(),
        );
        envelope_ok(snap.epoch, snap.staleness(), &data)
    }

    fn snapshot_refresh(&self, _req: &RouteRequest<'_>) -> Response {
        let snap = self.snapshots.load();
        self.snapshots.request_refresh();
        envelope_ok(snap.epoch, snap.staleness(), "{\"refresh_requested\":true}")
    }

    /// Resolve `?vertex=ID` or `?user=NAME` to a vertex of `snap`.
    /// Labels can run ahead of the freeze (a user interned after the
    /// snapshot), so ids are bounds-checked against the *snapshot*, not
    /// the directory.
    fn resolve_vertex(
        &self,
        req: &RouteRequest<'_>,
        snap: &Snapshot,
    ) -> Result<VertexId, Response> {
        let v = if let Some(raw) = req.query_param("vertex") {
            raw.parse::<VertexId>().map_err(|_| {
                envelope_error(
                    400,
                    snap.epoch,
                    snap.staleness(),
                    &format!("vertex must be a non-negative integer, got {raw:?}"),
                )
            })?
        } else if let Some(raw) = req.query_param("user") {
            let name = percent_decode(raw);
            self.labels
                .read()
                .expect("labels poisoned")
                .get(&name)
                .ok_or_else(|| {
                    envelope_error(
                        404,
                        snap.epoch,
                        snap.staleness(),
                        &format!("unknown user {name}"),
                    )
                })?
        } else {
            return Err(envelope_error(
                400,
                snap.epoch,
                snap.staleness(),
                "missing vertex= or user= parameter",
            ));
        };
        if (v as usize) >= snap.graph.num_vertices() {
            return Err(envelope_error(
                404,
                snap.epoch,
                snap.staleness(),
                &format!("vertex {v} not yet in snapshot epoch {}", snap.epoch),
            ));
        }
        Ok(v)
    }
}

fn bad_request(snap: &Snapshot, message: String) -> Response {
    envelope_error(400, snap.epoch, snap.staleness(), &message)
}

fn parse_usize(req: &RouteRequest<'_>, name: &str, default: usize) -> Result<usize, String> {
    match req.query_param(name) {
        None => Ok(default),
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| format!("{name} must be a non-negative integer, got {raw:?}")),
    }
}

/// The vertex's screen name as a JSON value (`"@user"` or `null`).
fn json_name(labels: &VertexLabels, v: VertexId) -> String {
    match labels.name(v) {
        Some(name) => {
            let mut out = String::with_capacity(name.len() + 2);
            graphct_trace::value::write_json_string(name, &mut out);
            out
        }
        None => "null".to_owned(),
    }
}

/// Minimal `%XX` decoding so `user=%40CDCFlu` works from strict
/// URL-encoding clients (`@` is also accepted raw).
fn percent_decode(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if let Some(byte) = raw
                .get(i + 1..i + 3)
                .and_then(|hex| u8::from_str_radix(hex, 16).ok())
            {
                out.push(byte);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphct_stream::StreamingGraph;

    fn plane_with(edges: &[(VertexId, VertexId)], names: &[&str]) -> (Arc<QueryPlane>, Router) {
        let cell = Arc::new(SnapshotCell::new());
        let mut labels = VertexLabels::new();
        for n in names {
            labels.intern(n);
        }
        let mut g = StreamingGraph::new(names.len());
        for &(u, v) in edges {
            g.insert_edge(u, v).unwrap();
        }
        cell.publish(g.snapshot(), 1);
        let plane = Arc::new(QueryPlane::new(cell, Arc::new(RwLock::new(labels)), 42, 10));
        let router = plane.routes(Router::new());
        (plane, router)
    }

    #[test]
    fn component_and_degree_answers() {
        let (_plane, router) =
            plane_with(&[(0, 1), (1, 2), (3, 4)], &["@a", "@b", "@c", "@d", "@e"]);
        let resp = router.dispatch("GET", "/v1/query/component", "user=@b");
        assert_eq!(resp.status, 200);
        assert!(
            resp.body.contains("\"component\":0") && resp.body.contains("\"size\":3"),
            "{}",
            resp.body
        );
        let resp = router.dispatch("GET", "/v1/query/degree", "vertex=1");
        assert!(
            resp.body.contains("\"degree\":2") && resp.body.contains("\"reach\":2"),
            "{}",
            resp.body
        );
        let resp = router.dispatch("GET", "/v1/query/degree", "vertex=3");
        assert!(resp.body.contains("\"reach\":1"), "{}", resp.body);
    }

    #[test]
    fn ego_answers_with_induced_edges() {
        let (_plane, router) = plane_with(&[(0, 1), (0, 2), (1, 2)], &["@a", "@b", "@c"]);
        let resp = router.dispatch("GET", "/v1/query/ego", "user=%40a");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(
            resp.body.contains("[0,1]")
                && resp.body.contains("[0,2]")
                && resp.body.contains("[1,2]"),
            "{}",
            resp.body
        );
        // The ego sits on one closed triangle: coefficient 1.
        assert!(
            resp.body.contains("\"triangles\":1") && resp.body.contains("\"clustering\":1"),
            "{}",
            resp.body
        );
        graphct_trace::json::parse(&resp.body).unwrap();
    }

    #[test]
    fn ego_of_low_degree_vertex_reports_zero_clustering() {
        let (_plane, router) = plane_with(&[(0, 1)], &["@a", "@b"]);
        let resp = router.dispatch("GET", "/v1/query/ego", "vertex=1");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(
            resp.body.contains("\"triangles\":0") && resp.body.contains("\"clustering\":0"),
            "{}",
            resp.body
        );
    }

    #[test]
    fn poisoned_topk_scores_become_an_error_envelope() {
        // The serving crash this guards against: a NaN anywhere in the
        // score array used to panic the worker thread inside the
        // ranking sort.  It must degrade to a versioned 500 envelope.
        let (plane, _router) = plane_with(&[(0, 1), (1, 2)], &["@a", "@b", "@c"]);
        let snap = plane.snapshots.load();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let resp = plane.render_topk(&snap, &[0.5, bad, 1.0], 3, 2, 7);
            assert_eq!(resp.status, 500);
            assert!(
                resp.body.contains("\"error\"") && resp.body.contains("non-finite"),
                "{}",
                resp.body
            );
            graphct_trace::json::parse(&resp.body).expect("error envelope must stay JSON");
        }
        // Finite scores through the same seam still rank.
        let resp = plane.render_topk(&snap, &[0.5, 2.0, 1.0], 2, 2, 7);
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("\"vertex\":1"), "{}", resp.body);
    }

    #[test]
    fn topk_is_deterministic_per_epoch() {
        let (_plane, router) = plane_with(
            &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)],
            &["@a", "@b", "@c", "@d", "@e"],
        );
        let a = router.dispatch("GET", "/v1/query/topk", "k=3&samples=5");
        let b = router.dispatch("GET", "/v1/query/topk", "k=3&samples=5");
        assert_eq!(a.status, 200, "{}", a.body);
        assert_eq!(a.body, b.body, "same epoch + params must be bit-identical");
        graphct_trace::json::parse(&a.body).unwrap();
    }

    #[test]
    fn errors_use_the_envelope() {
        let (_plane, router) = plane_with(&[(0, 1)], &["@a", "@b"]);
        let resp = router.dispatch("GET", "/v1/query/degree", "");
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"error\""), "{}", resp.body);
        let resp = router.dispatch("GET", "/v1/query/degree", "user=@missing");
        assert_eq!(resp.status, 404);
        let resp = router.dispatch("GET", "/v1/query/degree", "vertex=99");
        assert_eq!(resp.status, 404);
        let resp = router.dispatch("GET", "/v1/query/topk", "k=nope");
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn labels_ahead_of_snapshot_are_404_not_panic() {
        // Vertex 2 is interned but the frozen graph only has 2 vertices.
        let cell = Arc::new(SnapshotCell::new());
        let mut g = StreamingGraph::new(2);
        g.insert_edge(0, 1).unwrap();
        cell.publish(g.snapshot(), 1);
        let mut labels = VertexLabels::new();
        for n in ["@a", "@b", "@late"] {
            labels.intern(n);
        }
        let plane = Arc::new(QueryPlane::new(cell, Arc::new(RwLock::new(labels)), 42, 10));
        let router = plane.routes(Router::new());
        let resp = router.dispatch("GET", "/v1/query/degree", "user=@late");
        assert_eq!(resp.status, 404);
        assert!(resp.body.contains("not yet in snapshot"), "{}", resp.body);
    }

    #[test]
    fn refresh_sets_the_flag() {
        let (plane, router) = plane_with(&[(0, 1)], &["@a", "@b"]);
        let resp = router.dispatch("GET", "/v1/snapshot/refresh", "");
        assert_eq!(resp.status, 200);
        assert!(plane.snapshots.take_refresh_request());
    }

    #[test]
    fn membership_is_memoized_per_epoch() {
        let (plane, _router) = plane_with(&[(0, 1)], &["@a", "@b"]);
        let snap = plane.snapshots.load();
        let a = plane.membership(&snap);
        let b = plane.membership(&snap);
        assert!(Arc::ptr_eq(&a, &b), "same epoch shares the cache");
    }
}
