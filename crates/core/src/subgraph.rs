//! Vertex-induced subgraph extraction.
//!
//! GraphCT's utility functions "extract a subgraph induced by a coloring
//! function" (paper §IV-A): the connected-components kernel returns a
//! color per vertex, and analysis proceeds component by component (the
//! `extract component 1` line of the example script, §IV-B).

use crate::csr::CsrGraph;
use crate::error::Result;
use crate::types::VertexId;
use graphct_mt::prefix;
use rayon::prelude::*;

/// A subgraph plus the mapping back to the parent graph's vertex ids.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// The induced graph over the selected vertices, relabeled `0..k`.
    pub graph: CsrGraph,
    /// `orig_of[new] = old`: parent-graph id of each subgraph vertex,
    /// ascending.
    pub orig_of: Vec<VertexId>,
}

impl Subgraph {
    /// Translate a subgraph vertex id back to the parent graph.
    #[inline]
    pub fn to_parent(&self, v: VertexId) -> VertexId {
        self.orig_of[v as usize]
    }
}

/// Extract the subgraph induced by the vertices where `keep[v]` is true.
///
/// Edges are kept when **both** endpoints are kept. The result preserves
/// directedness, sortedness, and (for undirected inputs) symmetry.
pub fn induced_subgraph(graph: &CsrGraph, keep: &[bool]) -> Result<Subgraph> {
    assert_eq!(
        keep.len(),
        graph.num_vertices(),
        "mask length must equal vertex count"
    );
    let n = graph.num_vertices();

    // Dense relabeling: new id = number of kept vertices before v.
    let kept_flags: Vec<usize> = keep.par_iter().map(|&k| k as usize).collect();
    let (rank, k) = prefix::exclusive_prefix_sum(&kept_flags);
    let orig_of: Vec<VertexId> = (0..n as VertexId)
        .into_par_iter()
        .filter(|&v| keep[v as usize])
        .collect();
    debug_assert_eq!(orig_of.len(), k);

    // Per-kept-vertex surviving degree.
    let new_degrees: Vec<usize> = orig_of
        .par_iter()
        .map(|&old| {
            graph
                .neighbors(old)
                .iter()
                .filter(|&&t| keep[t as usize])
                .count()
        })
        .collect();
    let (offsets, total) = prefix::exclusive_prefix_sum(&new_degrees);

    let mut targets = vec![0 as VertexId; total];
    // Each kept vertex owns a disjoint slice of `targets`.
    {
        let mut rest: &mut [VertexId] = &mut targets;
        let mut slices = Vec::with_capacity(k);
        for i in 0..k {
            let (head, tail) = rest.split_at_mut(offsets[i + 1] - offsets[i]);
            slices.push(head);
            rest = tail;
        }
        slices
            .into_par_iter()
            .zip(orig_of.par_iter())
            .for_each(|(slice, &old)| {
                let mut j = 0;
                for &t in graph.neighbors(old) {
                    if keep[t as usize] {
                        slice[j] = rank[t as usize] as VertexId;
                        j += 1;
                    }
                }
                debug_assert_eq!(j, slice.len());
            });
    }

    let graph = CsrGraph::from_raw_parts(offsets, targets, graph.is_directed())?;
    Ok(Subgraph { graph, orig_of })
}

/// Extract the subgraph induced by vertices whose color equals `color`.
pub fn subgraph_by_color(
    graph: &CsrGraph,
    colors: &[VertexId],
    color: VertexId,
) -> Result<Subgraph> {
    assert_eq!(colors.len(), graph.num_vertices());
    let keep: Vec<bool> = colors.par_iter().map(|&c| c == color).collect();
    induced_subgraph(graph, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected_simple;
    use crate::edge_list::EdgeList;

    fn path5() -> CsrGraph {
        build_undirected_simple(&EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 3), (3, 4)]))
            .unwrap()
    }

    #[test]
    fn keep_all_is_identity() {
        let g = path5();
        let s = induced_subgraph(&g, &[true; 5]).unwrap();
        assert_eq!(s.graph, g);
        assert_eq!(s.orig_of, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn keep_none_is_empty() {
        let g = path5();
        let s = induced_subgraph(&g, &[false; 5]).unwrap();
        assert_eq!(s.graph.num_vertices(), 0);
        assert_eq!(s.graph.num_edges(), 0);
        assert!(s.orig_of.is_empty());
    }

    #[test]
    fn middle_removal_splits_edges() {
        let g = path5();
        // Remove vertex 2: edges (1,2) and (2,3) vanish.
        let s = induced_subgraph(&g, &[true, true, false, true, true]).unwrap();
        assert_eq!(s.graph.num_vertices(), 4);
        assert_eq!(s.graph.num_edges(), 2);
        assert_eq!(s.orig_of, vec![0, 1, 3, 4]);
        // New ids: 0→0, 1→1, 3→2, 4→3
        assert!(s.graph.has_edge(0, 1));
        assert!(s.graph.has_edge(2, 3));
        assert!(!s.graph.has_edge(1, 2));
        assert_eq!(s.to_parent(2), 3);
        assert!(s.graph.is_symmetric());
    }

    #[test]
    fn color_extraction() {
        let g = path5();
        let colors = vec![7, 7, 7, 9, 9];
        let s = subgraph_by_color(&g, &colors, 9).unwrap();
        assert_eq!(s.graph.num_vertices(), 2);
        assert_eq!(s.graph.num_edges(), 1);
        assert_eq!(s.orig_of, vec![3, 4]);
    }

    #[test]
    fn directed_subgraph_preserves_orientation() {
        let g = crate::builder::build_directed_simple(&EdgeList::from_pairs(vec![
            (0, 1),
            (1, 2),
            (2, 0),
        ]))
        .unwrap();
        let s = induced_subgraph(&g, &[true, true, false]).unwrap();
        assert!(s.graph.is_directed());
        assert!(s.graph.has_edge(0, 1));
        assert!(!s.graph.has_edge(1, 0));
        assert_eq!(s.graph.num_edges(), 1);
    }

    #[test]
    #[should_panic(expected = "mask length")]
    fn wrong_mask_length_panics() {
        let g = path5();
        let _ = induced_subgraph(&g, &[true; 3]);
    }
}
