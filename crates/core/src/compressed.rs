//! Delta/varint-compressed CSR adjacency (Ligra+/GBBS style).
//!
//! Sorted neighbor lists are stored as byte streams: per vertex, the
//! degree as a LEB128 varint, then the first neighbor zigzag-encoded as
//! a signed offset from the vertex's own id, then each subsequent
//! neighbor as the (non-negative) gap from its predecessor.  A
//! `byte_offsets` array of `n + 1` entries delimits each vertex's
//! block, so traversal decodes exactly one vertex's stream at a time —
//! no global decompression pass, no scratch buffers.
//!
//! On scale-free graphs the average gap is `n / degree`, so hubs (the
//! vertices traversals actually spend time in) compress toward one byte
//! per arc while the four-byte worst case is only reached by isolated
//! long-range edges.  This is the representation that lets scale 20+
//! R-MAT instances fit alongside the kernels' working sets (GBBS,
//! "Theoretically Efficient Parallel Graph Algorithms Can Be Fast and
//! Scalable", compresses the 225 GB WebDataCommons hyperlink graph to
//! fit a 1 TB node the same way).

use crate::csr::CsrGraph;
use crate::error::Result;
use crate::types::VertexId;
use crate::view::GraphView;
use graphct_trace::Counter;
use rayon::prelude::*;

/// Varints decoded while traversing compressed adjacency (one per
/// neighbor plus the leading degree varint of each block).
pub static COMPRESSED_VARINTS_DECODED: Counter = Counter::new(
    "compressed_varints_decoded_total",
    "Varints decoded from compressed adjacency streams",
);

/// Encoded bytes touched while traversing compressed adjacency.
pub static COMPRESSED_BYTES_TOUCHED: Counter = Counter::new(
    "compressed_bytes_touched_total",
    "Encoded adjacency bytes touched by compressed traversal",
);

/// Per-vertex blocks opened for full decode (`neighbors_iter`).
pub static COMPRESSED_BLOCKS_DECODED: Counter = Counter::new(
    "compressed_blocks_decoded_total",
    "Compressed adjacency blocks opened for full decode",
);

/// Degree queries that re-decode a block's leading varint without
/// walking the neighbors — repeat lookups are pure re-decode work.
pub static COMPRESSED_BLOCKS_REDECODED: Counter = Counter::new(
    "compressed_blocks_redecoded_total",
    "Degree queries re-decoding a compressed block's leading varint",
);

/// A graph whose adjacency lists are delta-encoded varint byte streams.
///
/// Built from any [`GraphView`] (neighbor lists are sorted during
/// encoding if needed); implements [`GraphView`] itself, so every
/// generic kernel traverses it directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedCsr {
    /// `n + 1` byte positions into `data`; vertex `v`'s stream is
    /// `data[byte_offsets[v] .. byte_offsets[v + 1]]`.
    byte_offsets: Vec<usize>,
    /// Concatenated per-vertex varint streams.
    data: Vec<u8>,
    num_arcs: usize,
    directed: bool,
}

/// Append `value` as a LEB128 varint (7 bits per byte, MSB = continue).
#[inline]
fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-map a signed value onto the unsigned varint space.
#[inline]
fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

#[inline]
fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Decode one varint starting at `*pos`, advancing `*pos`.
///
/// The stream is produced by [`push_varint`] in this module, never from
/// untrusted input, so malformed data is a logic error (debug-asserted)
/// rather than a runtime `Result`.
#[inline]
fn read_varint(data: &[u8], pos: &mut usize) -> u64 {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = data[*pos];
        *pos += 1;
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return value;
        }
        shift += 7;
        debug_assert!(shift < 64, "varint overran 64 bits");
    }
}

/// Encode one vertex's sorted neighbor list.
fn encode_block(v: VertexId, neighbors: &[VertexId], out: &mut Vec<u8>) {
    push_varint(out, neighbors.len() as u64);
    let mut prev: Option<VertexId> = None;
    for &t in neighbors {
        match prev {
            None => push_varint(out, zigzag(i64::from(t) - i64::from(v))),
            Some(p) => {
                debug_assert!(t >= p, "encode_block requires sorted neighbors");
                push_varint(out, u64::from(t - p));
            }
        }
        prev = Some(t);
    }
}

impl CompressedCsr {
    /// Compress any [`GraphView`].  Neighbor lists that are not already
    /// sorted ascending are sorted during encoding (the decoded graph
    /// is always sorted), so a [`CsrGraph::from_raw_parts`] graph with
    /// unsorted lists round-trips to its canonical form.
    pub fn from_view<G: GraphView + ?Sized>(graph: &G) -> Self {
        let n = graph.num_vertices();
        let blocks: Vec<Vec<u8>> = (0..n as VertexId)
            .into_par_iter()
            .map(|v| {
                let mut nbrs: Vec<VertexId> = graph.neighbors_iter(v).collect();
                if !nbrs.windows(2).all(|w| w[0] <= w[1]) {
                    nbrs.sort_unstable();
                }
                let mut block = Vec::with_capacity(1 + nbrs.len());
                encode_block(v, &nbrs, &mut block);
                block
            })
            .collect();
        let mut byte_offsets = Vec::with_capacity(n + 1);
        byte_offsets.push(0usize);
        let mut total = 0usize;
        for b in &blocks {
            total += b.len();
            byte_offsets.push(total);
        }
        let mut data = Vec::with_capacity(total);
        for b in &blocks {
            data.extend_from_slice(b);
        }
        Self {
            byte_offsets,
            data,
            num_arcs: graph.num_arcs(),
            directed: graph.is_directed(),
        }
    }

    /// Heap footprint of the compressed arrays in bytes — the number the
    /// scale sweep compares against the plain binary size.
    pub fn memory_bytes(&self) -> usize {
        self.byte_offsets.len() * std::mem::size_of::<usize>() + self.data.len()
    }

    /// Average encoded bytes per stored arc.
    pub fn bytes_per_arc(&self) -> f64 {
        if self.num_arcs == 0 {
            0.0
        } else {
            self.data.len() as f64 / self.num_arcs as f64
        }
    }

    /// Decompress back to a plain heap CSR (sorted adjacency).
    pub fn decompress(&self) -> Result<CsrGraph> {
        Ok(self.to_csr())
    }
}

/// Block-wise decoder for one vertex's neighbor stream.
pub struct CompressedNeighbors<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: usize,
    vertex: VertexId,
    prev: Option<VertexId>,
}

impl Iterator for CompressedNeighbors<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let raw = read_varint(self.data, &mut self.pos);
        let t = match self.prev {
            None => (i64::from(self.vertex) + unzigzag(raw)) as VertexId,
            Some(p) => p + raw as VertexId,
        };
        self.prev = Some(t);
        Some(t)
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for CompressedNeighbors<'_> {}

impl GraphView for CompressedCsr {
    type Neighbors<'a> = CompressedNeighbors<'a>;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.byte_offsets.len() - 1
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    #[inline]
    fn is_directed(&self) -> bool {
        self.directed
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        COMPRESSED_BLOCKS_REDECODED.incr();
        COMPRESSED_VARINTS_DECODED.incr();
        let mut pos = self.byte_offsets[v as usize];
        read_varint(&self.data, &mut pos) as usize
    }

    #[inline]
    fn neighbors_iter(&self, v: VertexId) -> CompressedNeighbors<'_> {
        let start = self.byte_offsets[v as usize];
        let end = self.byte_offsets[v as usize + 1];
        let mut pos = start;
        let deg = read_varint(&self.data, &mut pos) as usize;
        // Decode work is accounted per block at iterator creation (one
        // varint per neighbor plus the degree prefix), keeping `next()`
        // itself increment-free.
        COMPRESSED_BLOCKS_DECODED.incr();
        COMPRESSED_VARINTS_DECODED.add(deg as u64 + 1);
        COMPRESSED_BYTES_TOUCHED.add((end - start) as u64);
        CompressedNeighbors {
            data: &self.data[..end],
            pos,
            remaining: deg,
            vertex: v,
            prev: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_directed_simple, build_undirected_simple};
    use crate::edge_list::EdgeList;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            buf.clear();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(u32::MAX),
            -i64::from(u32::MAX),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn roundtrips_undirected() {
        let g = build_undirected_simple(&EdgeList::from_pairs(vec![
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 2),
        ]))
        .unwrap();
        let c = CompressedCsr::from_view(&g);
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_arcs(), g.num_arcs());
        assert!(!c.is_directed());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(c.degree(v), g.degree(v));
            let nbrs: Vec<VertexId> = c.neighbors_iter(v).collect();
            assert_eq!(nbrs, g.neighbors(v));
        }
        assert_eq!(c.decompress().unwrap(), g);
    }

    #[test]
    fn roundtrips_directed_and_empty_vertices() {
        let g = build_directed_simple(&EdgeList::from_pairs(vec![(5, 0), (0, 5), (2, 4)])).unwrap();
        let c = CompressedCsr::from_view(&g);
        assert_eq!(c.decompress().unwrap(), g);
        assert_eq!(c.degree(1), 0);
        assert_eq!(c.neighbors_iter(1).count(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(3, false);
        let c = CompressedCsr::from_view(&g);
        assert_eq!(c.num_vertices(), 3);
        assert_eq!(c.num_arcs(), 0);
        assert_eq!(c.decompress().unwrap(), g);
    }

    #[test]
    fn unsorted_raw_parts_compress_to_canonical_form() {
        // from_raw_parts permits unsorted lists; the encoder sorts.
        let g = CsrGraph::from_raw_parts(vec![0, 3, 3, 3], vec![2, 0, 1], true).unwrap();
        let c = CompressedCsr::from_view(&g);
        let nbrs: Vec<VertexId> = c.neighbors_iter(0).collect();
        assert_eq!(nbrs, &[0, 1, 2]);
    }

    #[test]
    fn decode_counters_account_traversal_work() {
        let g =
            build_undirected_simple(&EdgeList::from_pairs(vec![(0, 1), (1, 2), (0, 2)])).unwrap();
        let c = CompressedCsr::from_view(&g);
        let session = graphct_trace::Session::start(std::sync::Arc::new(graphct_trace::NullSink));
        for v in 0..c.num_vertices() as VertexId {
            let _ = c.neighbors_iter(v).count();
        }
        let _ = c.degree(0);
        // 6 arcs + 3 degree prefixes from full decodes + 1 re-decode.
        assert_eq!(COMPRESSED_VARINTS_DECODED.value(), 6 + 3 + 1);
        assert_eq!(COMPRESSED_BLOCKS_DECODED.value(), 3);
        assert_eq!(COMPRESSED_BLOCKS_REDECODED.value(), 1);
        assert_eq!(COMPRESSED_BYTES_TOUCHED.value(), c.data.len() as u64);
        session.finish();
    }

    #[test]
    fn hub_vertex_compresses_below_four_bytes_per_arc() {
        // A star: the hub's gaps are all 1 → one byte per arc there.
        let n = 5000u32;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let g = build_undirected_simple(&EdgeList::from_pairs(edges)).unwrap();
        let c = CompressedCsr::from_view(&g);
        assert_eq!(c.decompress().unwrap(), g);
        assert!(
            c.bytes_per_arc() < 4.0,
            "expected compression, got {} bytes/arc",
            c.bytes_per_arc()
        );
        assert!(c.memory_bytes() < g.memory_bytes());
    }
}
