//! Vertex ↔ name directory.
//!
//! Twitter analysis reports ranked *handles* (Table IV lists `@CDCFlu`,
//! `@ajc`, …), so the tweet-to-graph pipeline interns each screen name to
//! a dense vertex id and keeps the reverse mapping here.

use crate::types::VertexId;
use std::collections::HashMap;

/// An interning table mapping string labels to dense vertex ids.
#[derive(Debug, Clone, Default)]
pub struct VertexLabels {
    names: Vec<String>,
    index: HashMap<String, VertexId>,
}

impl VertexLabels {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the id for `name`, interning it if new.
    pub fn intern(&mut self, name: &str) -> VertexId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as VertexId;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Look up an existing name without interning.
    pub fn get(&self, name: &str) -> Option<VertexId> {
        self.index.get(name).copied()
    }

    /// The label of vertex `v`, if assigned.
    pub fn name(&self, v: VertexId) -> Option<&str> {
        self.names.get(v as usize).map(String::as_str)
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no labels are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (i as VertexId, n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut l = VertexLabels::new();
        let a = l.intern("@CDCFlu");
        let b = l.intern("@ajc");
        assert_eq!(l.intern("@CDCFlu"), a);
        assert_ne!(a, b);
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let mut l = VertexLabels::new();
        let id = l.intern("@nytimes");
        assert_eq!(l.get("@nytimes"), Some(id));
        assert_eq!(l.get("@missing"), None);
        assert_eq!(l.name(id), Some("@nytimes"));
        assert_eq!(l.name(99), None);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut l = VertexLabels::new();
        for i in 0..100 {
            assert_eq!(l.intern(&format!("u{i}")), i as VertexId);
        }
        let pairs: Vec<_> = l.iter().collect();
        assert_eq!(pairs[7], (7, "u7"));
        assert_eq!(pairs.len(), 100);
    }

    #[test]
    fn empty_directory() {
        let l = VertexLabels::new();
        assert!(l.is_empty());
        assert_eq!(l.iter().count(), 0);
    }
}
