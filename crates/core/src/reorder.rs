//! The locality engine: vertex permutations and cache-conscious
//! relabeling passes.
//!
//! The paper runs betweenness centrality on the Cray XMT, whose hardware
//! multithreading *hides* the memory latency of irregular neighbor
//! gathers.  Commodity multicore has no such shield: a kernel's speed is
//! dominated by how often `targets[offsets[v]..]` lands in cache, and on
//! heavy-tailed mention graphs that is almost entirely a property of the
//! vertex numbering.  Following SNAP and Dhulipala–Blelloch–Shun (GBBS),
//! relabeling is a first-class primitive here, not a preprocessing hack:
//!
//! * [`Permutation`] — a validated bijection on vertex ids with
//!   `apply` / [`Permutation::inverse`] / [`Permutation::compose`].
//! * [`CsrGraph::reordered`] — O(E) relabel of the CSR arrays that
//!   preserves adjacency sortedness and directedness.
//! * [`by_degree`] / [`by_rcm`] / [`by_shuffle`] — the reordering passes:
//!   degree-descending hub packing, reverse Cuthill–McKee traversal
//!   order seeded from the largest component, and a seeded random
//!   shuffle that serves as the honest "any permutation helps?" baseline
//!   for A/B runs.
//! * [`ReorderedView`] — a relabeled graph bundled with its permutation,
//!   so kernel outputs indexed by *new* ids can be mapped back to the
//!   caller's original numbering ([`ReorderedView::restore`], and
//!   [`ReorderedView::restore_colors`] for component labels whose
//!   *values* are also vertex ids).
//!
//! Every pass runs under a `graphct-trace` span and flips the
//! [`struct@REORDER_APPLIED`] gauge, so traces record which ordering a
//! kernel actually saw.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::types::{VertexId, INVALID_VERTEX};
use graphct_trace::Gauge;
use rayon::prelude::*;
use std::str::FromStr;

/// Which reordering pass produced the active graph, exported at the
/// most recent [`ReorderedView`] construction: 0 natural, 1 degree,
/// 2 rcm, 3 shuffle.
pub static REORDER_APPLIED: Gauge = Gauge::new(
    "reorder_applied",
    "vertex reordering pass applied to the active graph (0 natural, 1 degree, 2 rcm, 3 shuffle)",
);

/// A bijection `old vertex id -> new vertex id` on `0..n`.
///
/// Stored as `new_of_old`, i.e. `apply(v)` is a single array read.
/// Constructors validate bijectivity, so a `Permutation` can always be
/// applied safely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_of_old: Vec<VertexId>,
}

impl Permutation {
    /// The identity permutation on `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self {
            new_of_old: (0..n as VertexId).collect(),
        }
    }

    /// Build from a `new_of_old` map (`new_of_old[old] = new`).
    ///
    /// # Errors
    /// [`GraphError::InvalidArgument`] unless the map is a bijection on
    /// `0..len`.
    pub fn from_new_ids(new_of_old: Vec<VertexId>) -> Result<Self> {
        let n = new_of_old.len();
        let mut seen = vec![false; n];
        for &new in &new_of_old {
            if (new as usize) >= n || std::mem::replace(&mut seen[new as usize], true) {
                return Err(GraphError::InvalidArgument(format!(
                    "permutation is not a bijection on 0..{n}: duplicate or out-of-range id {new}"
                )));
            }
        }
        Ok(Self { new_of_old })
    }

    /// Build from a visitation order: `order[new] = old` (the old ids
    /// listed in their new sequence).  This is the natural output shape
    /// of a traversal-based pass.
    ///
    /// # Errors
    /// [`GraphError::InvalidArgument`] unless `order` is a bijection.
    pub fn from_order(order: &[VertexId]) -> Result<Self> {
        let n = order.len();
        let mut new_of_old = vec![INVALID_VERTEX; n];
        for (new, &old) in order.iter().enumerate() {
            if (old as usize) >= n || new_of_old[old as usize] != INVALID_VERTEX {
                return Err(GraphError::InvalidArgument(format!(
                    "order is not a bijection on 0..{n}: duplicate or out-of-range id {old}"
                )));
            }
            new_of_old[old as usize] = new as VertexId;
        }
        Ok(Self { new_of_old })
    }

    /// Number of vertices the permutation acts on.
    #[inline]
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// `true` for the empty permutation.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// New id of old vertex `v`.
    #[inline]
    pub fn apply(&self, v: VertexId) -> VertexId {
        self.new_of_old[v as usize]
    }

    /// Borrow the `new_of_old` map.
    #[inline]
    pub fn as_slice(&self) -> &[VertexId] {
        &self.new_of_old
    }

    /// `true` when the permutation maps every vertex to itself.
    pub fn is_identity(&self) -> bool {
        self.new_of_old
            .iter()
            .enumerate()
            .all(|(i, &v)| v as usize == i)
    }

    /// The inverse permutation (`inverse().apply(apply(v)) == v`).
    pub fn inverse(&self) -> Permutation {
        let mut old_of_new = vec![0 as VertexId; self.len()];
        for (old, &new) in self.new_of_old.iter().enumerate() {
            old_of_new[new as usize] = old as VertexId;
        }
        Permutation {
            new_of_old: old_of_new,
        }
    }

    /// Composition "`self` then `other`":
    /// `self.compose(&other).apply(v) == other.apply(self.apply(v))`.
    ///
    /// # Panics
    /// When the two permutations act on different vertex counts.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(
            self.len(),
            other.len(),
            "composed permutations must act on the same vertex count"
        );
        Permutation {
            new_of_old: self
                .new_of_old
                .iter()
                .map(|&mid| other.apply(mid))
                .collect(),
        }
    }

    /// Move per-vertex values from old indexing to new indexing
    /// (`out[apply(v)] = values[v]`).
    pub fn permute<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "value vector length mismatch");
        let mut out = values.to_vec();
        for (old, &new) in self.new_of_old.iter().enumerate() {
            out[new as usize] = values[old].clone();
        }
        out
    }

    /// Move per-vertex values from new indexing back to old indexing
    /// (`out[v] = values[apply(v)]`) — the inverse of
    /// [`Permutation::permute`].
    pub fn unpermute<T: Clone>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len(), "value vector length mismatch");
        self.new_of_old
            .iter()
            .map(|&new| values[new as usize].clone())
            .collect()
    }
}

impl CsrGraph {
    /// Relabel the graph through `perm`: new vertex `perm.apply(v)`
    /// inherits old vertex `v`'s adjacency, with every target id mapped
    /// through `perm` as well.
    ///
    /// O(E) array traffic plus the per-list sorts that restore the
    /// sorted-adjacency invariant; directedness is preserved, and for
    /// undirected graphs both stored arc directions relabel
    /// consistently, so [`CsrGraph::is_symmetric`] is preserved too.
    ///
    /// # Panics
    /// When `perm.len() != self.num_vertices()`.
    pub fn reordered(&self, perm: &Permutation) -> CsrGraph {
        let n = self.num_vertices();
        assert_eq!(
            perm.len(),
            n,
            "permutation must act on exactly the graph's vertices"
        );
        let _span = graphct_trace::span!("reorder_relabel", vertices = n, arcs = self.num_arcs());
        let inverse = perm.inverse();
        let old_of_new = inverse.as_slice();
        let new_degrees: Vec<usize> = old_of_new.par_iter().map(|&old| self.degree(old)).collect();
        let (offsets, total) = graphct_mt::prefix::exclusive_prefix_sum(&new_degrees);
        debug_assert_eq!(total, self.num_arcs());
        let mut targets = vec![0 as VertexId; total];
        {
            // Split the target array into per-new-vertex chunks so each
            // adjacency list is filled (and later sorted) independently.
            let mut rest: &mut [VertexId] = &mut targets;
            let mut chunks: Vec<(VertexId, &mut [VertexId])> = Vec::with_capacity(n);
            for (new_v, &len) in new_degrees.iter().enumerate() {
                let (head, tail) = rest.split_at_mut(len);
                chunks.push((old_of_new[new_v], head));
                rest = tail;
            }
            chunks.into_par_iter().for_each(|(old_v, chunk)| {
                for (slot, &t) in chunk.iter_mut().zip(self.neighbors(old_v)) {
                    *slot = perm.apply(t);
                }
            });
        }
        let mut out = CsrGraph::from_raw_parts(offsets, targets, self.is_directed())
            .expect("relabeled CSR arrays are valid by construction");
        out.sort_adjacency();
        // A bijective relabel of a simple graph is simple (no arc can
        // become a loop or collide with another), and the lists were
        // just sorted — carry the sorted-simple witness across so the
        // reordered copy skips kernel revalidation too.
        if self.sorted_simple_hint() == Some(true) {
            out.mark_sorted_simple();
        }
        out
    }
}

/// The reordering passes selectable on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderKind {
    /// Keep the natural (ingest) order.
    #[default]
    None,
    /// Degree-descending hub packing.
    Degree,
    /// Reverse Cuthill–McKee traversal order from the largest component.
    Rcm,
    /// Seeded random shuffle — the honest A/B baseline.
    Shuffle,
}

impl ReorderKind {
    /// Every kind, in gauge-code order.
    pub const ALL: [ReorderKind; 4] = [
        ReorderKind::None,
        ReorderKind::Degree,
        ReorderKind::Rcm,
        ReorderKind::Shuffle,
    ];

    /// Canonical lowercase name (the CLI flag value).
    pub fn as_str(self) -> &'static str {
        match self {
            ReorderKind::None => "none",
            ReorderKind::Degree => "degree",
            ReorderKind::Rcm => "rcm",
            ReorderKind::Shuffle => "shuffle",
        }
    }

    /// Value exported through the [`struct@REORDER_APPLIED`] gauge.
    pub fn gauge_code(self) -> u64 {
        match self {
            ReorderKind::None => 0,
            ReorderKind::Degree => 1,
            ReorderKind::Rcm => 2,
            ReorderKind::Shuffle => 3,
        }
    }
}

impl std::fmt::Display for ReorderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ReorderKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "none" => Ok(ReorderKind::None),
            "degree" => Ok(ReorderKind::Degree),
            "rcm" => Ok(ReorderKind::Rcm),
            "shuffle" => Ok(ReorderKind::Shuffle),
            other => Err(format!(
                "unknown reorder pass '{other}' (expected none|degree|rcm|shuffle)"
            )),
        }
    }
}

/// Degree-descending ordering: hubs get the lowest new ids.
///
/// On heavy-tailed graphs this packs the hot high-degree adjacency
/// lists into a contiguous prefix of the target array, and — because
/// adjacency stays sorted — hub neighbors appear *first* in every list,
/// which direction-optimizing pull sweeps reward (they stop at the
/// first frontier parent).  Ties break toward the smaller old id, so
/// the pass is deterministic.
pub fn by_degree(graph: &CsrGraph) -> Permutation {
    let n = graph.num_vertices();
    let _span = graphct_trace::span!("reorder_pass", pass = "degree", vertices = n);
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    order.sort_unstable_by(|&a, &b| graph.degree(b).cmp(&graph.degree(a)).then(a.cmp(&b)));
    Permutation::from_order(&order).expect("sorted id list is a bijection")
}

/// Reverse Cuthill–McKee-style ordering: breadth-first traversal order,
/// components largest-first, each component's order reversed.
///
/// Classic RCM minimizes matrix bandwidth; for graph kernels the payoff
/// is that vertices of adjacent BFS levels — exactly the pairs every
/// sweep touches together — receive nearby ids.  Per RCM convention
/// each component is rooted at a minimum-degree vertex and neighbors
/// are visited in ascending-degree order (ties toward the smaller old
/// id, so the pass is deterministic).  Directed graphs traverse the
/// union of out- and in-neighbors (weak connectivity) via one
/// transpose.
pub fn by_rcm(graph: &CsrGraph) -> Permutation {
    let n = graph.num_vertices();
    let _span = graphct_trace::span!("reorder_pass", pass = "rcm", vertices = n);
    let transpose = graph.is_directed().then(|| graph.transpose());
    let undirected_degree =
        |v: VertexId| graph.degree(v) + transpose.as_ref().map_or(0, |t| t.degree(v));

    // Discover components (sequential BFS sweep over the undirected view).
    let mut comp_of = vec![usize::MAX; n];
    let mut components: Vec<Vec<VertexId>> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for seed in 0..n as VertexId {
        if comp_of[seed as usize] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = vec![seed];
        comp_of[seed as usize] = id;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            let ins = transpose
                .as_ref()
                .map_or(&[] as &[VertexId], |t| t.neighbors(u));
            for &v in graph.neighbors(u).iter().chain(ins) {
                if comp_of[v as usize] == usize::MAX {
                    comp_of[v as usize] = id;
                    members.push(v);
                    queue.push_back(v);
                }
            }
        }
        components.push(members);
    }
    // Largest component first; the stable sort keeps equal-size
    // components in discovery (min-member) order.
    components.sort_by_key(|c| std::cmp::Reverse(c.len()));

    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut fresh: Vec<VertexId> = Vec::new();
    for members in &components {
        let start = order.len();
        let root = *members
            .iter()
            .min_by_key(|&&v| (undirected_degree(v), v))
            .expect("components are non-empty");
        placed[root as usize] = true;
        order.push(root);
        let mut head = start;
        while head < order.len() {
            let u = order[head];
            head += 1;
            fresh.clear();
            let ins = transpose
                .as_ref()
                .map_or(&[] as &[VertexId], |t| t.neighbors(u));
            for &v in graph.neighbors(u).iter().chain(ins) {
                if !placed[v as usize] {
                    placed[v as usize] = true;
                    fresh.push(v);
                }
            }
            fresh.sort_unstable_by_key(|&v| (undirected_degree(v), v));
            order.extend_from_slice(&fresh);
        }
        order[start..].reverse();
    }
    Permutation::from_order(&order).expect("traversal order is a bijection")
}

/// Seeded uniform random shuffle (Fisher–Yates over a SplitMix64
/// stream) — destroys any locality the ingest order had, providing the
/// honest baseline that separates "this pass helps" from "any
/// permutation helps".
pub fn by_shuffle(graph: &CsrGraph, seed: u64) -> Permutation {
    let n = graph.num_vertices();
    let _span = graphct_trace::span!("reorder_pass", pass = "shuffle", vertices = n, seed = seed);
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        let j = (graphct_mt::rng::split_seed(seed, i as u64) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    Permutation::from_order(&order).expect("shuffled id list is a bijection")
}

/// Compute the permutation for `kind`, or `None` when the natural order
/// is requested (`seed` only affects [`ReorderKind::Shuffle`]).
pub fn compute(graph: &CsrGraph, kind: ReorderKind, seed: u64) -> Option<Permutation> {
    match kind {
        ReorderKind::None => None,
        ReorderKind::Degree => Some(by_degree(graph)),
        ReorderKind::Rcm => Some(by_rcm(graph)),
        ReorderKind::Shuffle => Some(by_shuffle(graph, seed)),
    }
}

/// A relabeled graph bundled with the permutation that produced it, so
/// kernel outputs can be mapped back to the caller's numbering.
///
/// The intended pattern keeps reordering *transparent* to callers:
///
/// ```
/// use graphct_core::reorder::{ReorderKind, ReorderedView};
/// use graphct_core::CsrGraph;
///
/// let graph = CsrGraph::from_raw_parts(vec![0, 1, 2, 4], vec![2, 2, 0, 1], false).unwrap();
/// let view = ReorderedView::apply(&graph, ReorderKind::Degree, 0).unwrap();
/// // run any kernel on view.graph() with sources mapped via
/// // view.translate_source(..), then bring per-vertex results home:
/// let degrees_new: Vec<usize> = view.graph().degrees();
/// assert_eq!(view.restore(&degrees_new), graph.degrees());
/// ```
#[derive(Debug, Clone)]
pub struct ReorderedView {
    kind: ReorderKind,
    perm: Permutation,
    graph: CsrGraph,
}

impl ReorderedView {
    /// Run pass `kind` on `original` and relabel; `None` when `kind` is
    /// [`ReorderKind::None`] (callers keep using the original graph and
    /// skip the copy).
    pub fn apply(original: &CsrGraph, kind: ReorderKind, seed: u64) -> Option<Self> {
        compute(original, kind, seed).map(|perm| Self::with_permutation(original, perm, kind))
    }

    /// Relabel `original` through an explicit `perm` (tagged `kind` for
    /// trace/gauge reporting).
    pub fn with_permutation(original: &CsrGraph, perm: Permutation, kind: ReorderKind) -> Self {
        let graph = original.reordered(&perm);
        REORDER_APPLIED.set(kind.gauge_code());
        Self { kind, perm, graph }
    }

    /// The relabeled graph kernels should run on.
    #[inline]
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Which pass produced this view.
    #[inline]
    pub fn kind(&self) -> ReorderKind {
        self.kind
    }

    /// The permutation mapping old ids to new ids.
    #[inline]
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }

    /// Map a caller-facing (old-id) vertex — a BFS source, a seed — into
    /// the reordered id space.
    #[inline]
    pub fn translate_source(&self, v: VertexId) -> VertexId {
        self.perm.apply(v)
    }

    /// Map a per-vertex result vector computed on [`ReorderedView::graph`]
    /// back to the original vertex numbering.
    pub fn restore<T: Clone>(&self, values: &[T]) -> Vec<T> {
        self.perm.unpermute(values)
    }

    /// Map component colors back to the original numbering — positions
    /// *and* label values, which are themselves vertex ids.
    ///
    /// `connected_components` labels every vertex with the minimum id in
    /// its component; after relabeling, that minimum is taken over *new*
    /// ids.  This re-canonicalizes each label to the minimum *old* id of
    /// the component, so the result is bit-identical to running on the
    /// natural order.  [`INVALID_VERTEX`] labels (vertices outside a
    /// requested component) pass through unchanged.
    pub fn restore_colors(&self, colors: &[VertexId]) -> Vec<VertexId> {
        let n = self.perm.len();
        assert_eq!(colors.len(), n, "color vector length mismatch");
        let mut min_old = vec![INVALID_VERTEX; n];
        for old in 0..n {
            let label = colors[self.perm.apply(old as VertexId) as usize];
            if label != INVALID_VERTEX && (old as VertexId) < min_old[label as usize] {
                min_old[label as usize] = old as VertexId;
            }
        }
        (0..n)
            .map(|old| {
                let label = colors[self.perm.apply(old as VertexId) as usize];
                if label == INVALID_VERTEX {
                    INVALID_VERTEX
                } else {
                    min_old[label as usize]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1, 1-2, 2-3, 3-4 path plus a 5-6 pair; vertex 7 isolated.
    fn fixture() -> CsrGraph {
        let pairs: &[(VertexId, VertexId)] = &[(0, 1), (1, 2), (2, 3), (3, 4), (5, 6)];
        let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); 8];
        for &(u, v) in pairs {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut offsets = vec![0usize];
        let mut targets = Vec::new();
        for mut list in adj {
            list.sort_unstable();
            targets.extend_from_slice(&list);
            offsets.push(targets.len());
        }
        CsrGraph::from_raw_parts(offsets, targets, false).unwrap()
    }

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.inverse(), p);
        assert_eq!(p.apply(3), 3);
        let g = fixture();
        let r = g.reordered(&Permutation::identity(8));
        assert_eq!(r, g);
    }

    #[test]
    fn bijection_validation() {
        assert!(Permutation::from_new_ids(vec![0, 0]).is_err());
        assert!(Permutation::from_new_ids(vec![0, 2]).is_err());
        assert!(Permutation::from_order(&[1, 1]).is_err());
        assert!(Permutation::from_order(&[0, 3]).is_err());
        assert!(Permutation::from_new_ids(vec![1, 0, 2]).is_ok());
    }

    #[test]
    fn inverse_and_compose() {
        let p = Permutation::from_new_ids(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.compose(&inv).is_identity());
        assert!(inv.compose(&p).is_identity());
        let q = Permutation::from_new_ids(vec![1, 2, 3, 0]).unwrap();
        for v in 0..4 {
            assert_eq!(p.compose(&q).apply(v), q.apply(p.apply(v)));
        }
    }

    #[test]
    fn permute_unpermute_roundtrip() {
        let p = Permutation::from_new_ids(vec![2, 0, 1]).unwrap();
        let vals = vec!["a", "b", "c"];
        let moved = p.permute(&vals);
        assert_eq!(moved, vec!["b", "c", "a"]);
        assert_eq!(p.unpermute(&moved), vals);
    }

    #[test]
    fn reordered_preserves_structure() {
        let g = fixture();
        for perm in [
            by_degree(&g),
            by_rcm(&g),
            by_shuffle(&g, 42),
            Permutation::from_new_ids(vec![7, 6, 5, 4, 3, 2, 1, 0]).unwrap(),
        ] {
            let r = g.reordered(&perm);
            assert_eq!(r.num_vertices(), g.num_vertices());
            assert_eq!(r.num_arcs(), g.num_arcs());
            assert_eq!(r.is_directed(), g.is_directed());
            assert!(r.is_sorted());
            assert!(r.is_symmetric());
            for u in 0..g.num_vertices() as VertexId {
                assert_eq!(r.degree(perm.apply(u)), g.degree(u));
                for &v in g.neighbors(u) {
                    assert!(r.has_edge(perm.apply(u), perm.apply(v)));
                }
            }
        }
    }

    #[test]
    fn reordered_directed_graph() {
        // 0→1, 0→2, 1→2
        let g = CsrGraph::from_raw_parts(vec![0, 2, 3, 3], vec![1, 2, 2], true).unwrap();
        let perm = Permutation::from_new_ids(vec![2, 1, 0]).unwrap();
        let r = g.reordered(&perm);
        assert!(r.is_directed());
        assert!(r.is_sorted());
        assert_eq!(r.neighbors(2), &[0, 1]); // old 0 → old {1,2}
        assert_eq!(r.neighbors(1), &[0]); // old 1 → old 2
        assert!(r.neighbors(0).is_empty());
    }

    #[test]
    fn degree_pass_packs_hubs() {
        let g = fixture();
        let perm = by_degree(&g);
        let r = g.reordered(&perm);
        let degs: Vec<usize> = (0..r.num_vertices() as VertexId)
            .map(|v| r.degree(v))
            .collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "degrees {degs:?}");
        // Ties break toward the smaller old id.
        assert_eq!(perm.apply(7), 7); // the isolated vertex goes last
    }

    #[test]
    fn rcm_pass_starts_in_largest_component() {
        let g = fixture();
        let perm = by_rcm(&g);
        // The 5-vertex path is the largest component: its members own new
        // ids 0..5; the 2-vertex pair gets 5..7; the isolate is last.
        for v in 0..5u32 {
            assert!(
                perm.apply(v) < 5,
                "path vertex {v} got id {}",
                perm.apply(v)
            );
        }
        assert!(perm.apply(5) >= 5 && perm.apply(5) < 7);
        assert_eq!(perm.apply(7), 7);
        // Path consecutiveness: RCM on a path gives adjacent vertices
        // adjacent ids (bandwidth 1).
        for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4)] {
            let d = perm.apply(u).abs_diff(perm.apply(v));
            assert_eq!(d, 1, "path edge ({u},{v}) stretched to distance {d}");
        }
    }

    #[test]
    fn shuffle_pass_is_seeded() {
        let g = fixture();
        assert_eq!(by_shuffle(&g, 7), by_shuffle(&g, 7));
        assert_ne!(by_shuffle(&g, 7), by_shuffle(&g, 8));
    }

    #[test]
    fn reorder_kind_parses() {
        for kind in ReorderKind::ALL {
            assert_eq!(kind.as_str().parse::<ReorderKind>().unwrap(), kind);
        }
        assert!("zcurve".parse::<ReorderKind>().is_err());
        assert_eq!(ReorderKind::default(), ReorderKind::None);
    }

    #[test]
    fn view_restores_values_and_sources() {
        let g = fixture();
        for kind in [ReorderKind::Degree, ReorderKind::Rcm, ReorderKind::Shuffle] {
            let view = ReorderedView::apply(&g, kind, 3).unwrap();
            assert_eq!(view.kind(), kind);
            let degrees_new = view.graph().degrees();
            assert_eq!(view.restore(&degrees_new), g.degrees());
            for v in 0..g.num_vertices() as VertexId {
                assert_eq!(view.graph().degree(view.translate_source(v)), g.degree(v));
            }
        }
        assert!(ReorderedView::apply(&g, ReorderKind::None, 0).is_none());
    }

    #[test]
    fn view_restores_component_colors() {
        let g = fixture();
        // Natural-order colors: min vertex id per component.
        let natural = vec![0u32, 0, 0, 0, 0, 5, 5, 7];
        for kind in [ReorderKind::Degree, ReorderKind::Rcm, ReorderKind::Shuffle] {
            let view = ReorderedView::apply(&g, kind, 11).unwrap();
            // Colors as a min-label propagation would compute them on the
            // reordered graph: min *new* id per component.
            let perm = view.permutation();
            let mut new_colors = vec![INVALID_VERTEX; 8];
            for comp in [&[0u32, 1, 2, 3, 4][..], &[5, 6][..], &[7][..]] {
                let min_new = comp.iter().map(|&v| perm.apply(v)).min().unwrap();
                for &v in comp {
                    new_colors[perm.apply(v) as usize] = min_new;
                }
            }
            assert_eq!(view.restore_colors(&new_colors), natural);
        }
    }

    #[test]
    fn restore_colors_passes_invalid_through() {
        let g = fixture();
        let view = ReorderedView::apply(&g, ReorderKind::Shuffle, 5).unwrap();
        let perm = view.permutation();
        // Only the 5-6 component colored; everything else INVALID.
        let mut new_colors = vec![INVALID_VERTEX; 8];
        let min_new = perm.apply(5).min(perm.apply(6));
        new_colors[perm.apply(5) as usize] = min_new;
        new_colors[perm.apply(6) as usize] = min_new;
        let restored = view.restore_colors(&new_colors);
        assert_eq!(restored[5], 5);
        assert_eq!(restored[6], 5);
        for v in [0usize, 1, 2, 3, 4, 7] {
            assert_eq!(restored[v], INVALID_VERTEX);
        }
    }

    #[test]
    #[should_panic(expected = "permutation must act")]
    fn reordered_rejects_wrong_length() {
        let g = fixture();
        g.reordered(&Permutation::identity(3));
    }
}
