//! Fundamental identifier types.

/// A vertex identifier.  Vertices are dense integers `0..n`.
///
/// `u32` supports graphs up to ~4.29 billion vertices — beyond the
/// scale-29 R-MAT instance in the paper (537 million vertices) — while
/// halving adjacency-array memory traffic versus `u64`, which is the
/// dominant cost of the irregular kernels.
pub type VertexId = u32;

/// Sentinel for "no vertex" (also used as the *unvisited* BFS level).
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_is_max() {
        assert_eq!(INVALID_VERTEX, u32::MAX);
    }
}
