//! # graphct-core — static graph data structures and I/O
//!
//! The heart of GraphCT (paper §IV-A): *one* common graph representation
//! shared by every analysis kernel, so that multiple kernels can run over a
//! single in-memory graph without conversions.
//!
//! * [`CsrGraph`] — the compressed-sparse-row graph ("The graph is stored
//!   in compressed-sparse row (CSR) format, a common representation for
//!   sparse matrices").  Static: the number of vertices and edges is fixed
//!   at ingest.
//! * [`GraphBuilder`] / [`EdgeList`] — parallel construction from edge
//!   lists with configurable duplicate-edge and self-loop policies
//!   (Twitter ingest "throws out duplicate user interactions", §III-B).
//! * [`subgraph`] — extraction of vertex-induced subgraphs from a coloring
//!   (the utility GraphCT provides for component analysis, §IV-A).
//! * [`io`] — DIMACS text parsing (parallel, §IV-C), a binary CSR format
//!   (the `comp1.bin` of the example script, §IV-B), and a plain edge-list
//!   format.
//! * [`labels`] — a vertex ↔ name directory so Twitter handles like
//!   `@CDCFlu` survive the trip through integer vertex ids (Table IV).
//! * [`reorder`] — the locality engine: validated vertex
//!   [`Permutation`]s, cache-conscious relabeling passes
//!   (degree-descending, RCM, shuffled baseline), and the
//!   [`ReorderedView`] wrapper that maps kernel results back to the
//!   caller's vertex numbering.
//!
//! Vertices are dense `u32` identifiers `0..n`.  Undirected graphs store
//! each edge in both adjacency lists; every kernel walks out-neighborhoods
//! only, which makes the undirected case "just work" (paper §I-A: "we
//! treat the graph as undirected, so an edge from @foo to @bar also
//! connects @bar back to @foo").

pub mod builder;
pub mod compressed;
pub mod csr;
pub mod edge_list;
pub mod error;
pub mod io;
pub mod labels;
pub mod memory;
pub mod reorder;
pub mod subgraph;
pub mod types;
pub mod view;

pub use builder::{DuplicatePolicy, GraphBuilder, SelfLoopPolicy};
pub use compressed::CompressedCsr;
pub use csr::CsrGraph;
pub use edge_list::EdgeList;
pub use error::{GraphError, Result};
pub use io::mmap::MmapCsr;
pub use labels::VertexLabels;
pub use memory::MemoryProbe;
pub use reorder::{Permutation, ReorderKind, ReorderedView};
pub use types::{VertexId, INVALID_VERTEX};
pub use view::GraphView;
