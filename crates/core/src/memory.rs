//! Backend memory observability: the `MemoryProbe`.
//!
//! PR 6's storage backends moved the practical graph-size ceiling from
//! "CSR fits twice in RAM" to "CSR fits on disk" — but ran blind: no
//! visibility into how much of a mapping is actually resident or how
//! much memory the process holds.  This module samples both from
//! standard kernel interfaces:
//!
//! * **Process RSS** from `/proc/self/statm` (field 2 × page size) —
//!   one 30-byte read, no allocation beyond the line buffer.
//! * **Page residency** of a mapped byte range via `mincore(2)` — one
//!   syscall plus one output byte per page, so sampling a scale-20
//!   graph (~50 MB, ~12k pages) costs ~12 KB of scratch and well under
//!   a millisecond.  Cheap enough to run before *and* after a
//!   traversal, which is exactly how `graphct stats --backend mmap`
//!   shows what the kernel paged in.
//!
//! Sampled values land in `graphct-trace` gauges
//! (`graphct_rss_bytes`, `graphct_mmap_resident_bytes`,
//! `graphct_mmap_mapped_bytes`), so they flow through every sink and
//! the live `/metrics` scrape for free.

use graphct_trace::Gauge;

/// Resident set size of the process, sampled from `/proc/self/statm`.
pub static RSS_BYTES: Gauge = Gauge::new(
    "rss_bytes",
    "Process resident set size in bytes (/proc/self/statm)",
);

/// Resident bytes of the most recently sampled graph mapping.
pub static MMAP_RESIDENT_BYTES: Gauge = Gauge::new(
    "mmap_resident_bytes",
    "Resident bytes of the mapped graph file (mincore page residency)",
);

/// Total mapped bytes of the most recently sampled graph mapping.
pub static MMAP_MAPPED_BYTES: Gauge = Gauge::new(
    "mmap_mapped_bytes",
    "Total mapped bytes of the graph file backing the mmap view",
);

#[cfg(target_os = "linux")]
mod sys {
    use std::ffi::c_void;

    extern "C" {
        pub fn mincore(addr: *mut c_void, length: usize, vec: *mut u8) -> i32;
        pub fn sysconf(name: i32) -> i64;
    }

    pub const SC_PAGESIZE: i32 = 30;
}

/// System page size (4096 when the platform probe is unavailable).
pub fn page_size() -> usize {
    #[cfg(target_os = "linux")]
    {
        let ps = unsafe { sys::sysconf(sys::SC_PAGESIZE) };
        if ps > 0 {
            return ps as usize;
        }
    }
    4096
}

/// Probe of process- and mapping-level memory, feeding the gauges above.
pub struct MemoryProbe;

impl MemoryProbe {
    /// Current process RSS in bytes, or `None` where `/proc` is absent.
    pub fn rss_bytes() -> Option<u64> {
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        // statm: size resident shared text lib data dt (in pages).
        let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        Some(resident_pages * page_size() as u64)
    }

    /// Sample RSS into the [`struct@RSS_BYTES`] gauge; returns the value.
    pub fn sample_rss() -> Option<u64> {
        let rss = Self::rss_bytes()?;
        RSS_BYTES.set(rss);
        Some(rss)
    }

    /// Resident bytes of `bytes` per `mincore(2)`, capped at the range
    /// length.  `None` where the syscall is unavailable or fails (e.g.
    /// a non-Linux host); the range is probed page-aligned, so heap
    /// slices work as well as mappings.
    #[allow(unused_variables)]
    pub fn resident_bytes(bytes: &[u8]) -> Option<usize> {
        if bytes.is_empty() {
            return Some(0);
        }
        #[cfg(target_os = "linux")]
        {
            let ps = page_size();
            let addr = bytes.as_ptr() as usize;
            let base = addr & !(ps - 1);
            let span = addr + bytes.len() - base;
            let pages = span.div_ceil(ps);
            let mut vec = vec![0u8; pages];
            let rc = unsafe { sys::mincore(base as *mut std::ffi::c_void, span, vec.as_mut_ptr()) };
            if rc != 0 {
                return None;
            }
            let resident_pages = vec.iter().filter(|&&b| b & 1 == 1).count();
            Some((resident_pages * ps).min(bytes.len()))
        }
        #[cfg(not(target_os = "linux"))]
        None
    }

    /// Sample a mapping's residency into the mmap gauges; returns
    /// `(resident, mapped)` bytes.  Residency falls back to the full
    /// length where `mincore` is unavailable, so the pair stays usable
    /// as a ratio everywhere.
    pub fn sample_mapping(bytes: &[u8]) -> (usize, usize) {
        let resident = Self::resident_bytes(bytes).unwrap_or(bytes.len());
        MMAP_RESIDENT_BYTES.set(resident as u64);
        MMAP_MAPPED_BYTES.set(bytes.len() as u64);
        (resident, bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_sane() {
        let ps = page_size();
        assert!(ps >= 512 && ps.is_power_of_two(), "{ps}");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn rss_is_positive() {
        let rss = MemoryProbe::rss_bytes().expect("/proc/self/statm readable");
        assert!(rss > 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn touched_heap_pages_are_resident() {
        // A freshly written buffer is necessarily resident.
        let buf = vec![7u8; 64 * 1024];
        let resident = MemoryProbe::resident_bytes(&buf).expect("mincore works on heap");
        assert!(resident > 0, "written pages must be resident");
        assert!(resident <= buf.len());
    }

    #[test]
    fn empty_range_is_zero_resident() {
        assert_eq!(MemoryProbe::resident_bytes(&[]), Some(0));
    }

    #[test]
    fn sample_mapping_returns_consistent_pair() {
        let buf = vec![1u8; 8192];
        let (resident, mapped) = MemoryProbe::sample_mapping(&buf);
        assert_eq!(mapped, buf.len());
        assert!(resident <= mapped);
    }
}
