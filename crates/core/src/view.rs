//! The `GraphView` trait: one read-only traversal interface over every
//! storage backend.
//!
//! The paper's premise is a *single* in-memory representation shared by
//! all kernels (§IV-A), but "in-memory heap `Vec`s" is a storage policy,
//! not an interface.  `GraphView` captures the five operations the
//! traversal kernels actually need — vertex/arc counts, directedness,
//! degree, and neighbor iteration — so hybrid BFS, MS-BFS, components,
//! and the degree/clustering kernels run unchanged over:
//!
//! * [`CsrGraph`] — plain heap CSR (the seed representation),
//! * [`crate::reorder::ReorderedView`] — a relabeled CSR from the
//!   locality engine,
//! * [`crate::io::mmap::MmapCsr`] — a zero-copy view over a
//!   memory-mapped format-v2 binary file, and
//! * [`crate::compressed::CompressedCsr`] — delta/varint-compressed
//!   adjacency in the style of Ligra+/GBBS, decoded block-wise during
//!   traversal.
//!
//! Neighbor iteration uses a generic associated type rather than
//! returning `&[VertexId]` because the compressed backend has no slice
//! to lend — its neighbors only exist while being decoded.  For slice
//! backends the iterator is `slice::Iter::copied`, which optimizes to
//! the same loads as direct indexing.

use crate::csr::CsrGraph;
use crate::reorder::ReorderedView;
use crate::types::VertexId;
use rayon::prelude::*;

/// A read-only graph suitable for traversal kernels.
///
/// Implementations must present the same adjacency *semantics* as
/// [`CsrGraph`]: undirected graphs store each edge in both endpoint
/// lists, and `neighbors_iter` yields each stored arc's target exactly
/// once.  Kernels additionally assume neighbors are yielded in
/// ascending order when they document a sortedness requirement (the
/// clustering kernels validate this; the traversal kernels do not need
/// it).
pub trait GraphView: Sync {
    /// The neighbor iterator for a single vertex.
    type Neighbors<'a>: Iterator<Item = VertexId> + 'a
    where
        Self: 'a;

    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of *stored* directed arcs (twice the edge count for an
    /// undirected graph).
    fn num_arcs(&self) -> usize;

    /// `true` if the graph was built as directed.
    fn is_directed(&self) -> bool;

    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Iterate the out-neighbors of `v`.
    fn neighbors_iter(&self, v: VertexId) -> Self::Neighbors<'_>;

    /// Number of logical edges: arcs for a directed graph, arc-pairs
    /// for an undirected one.
    fn num_edges(&self) -> usize {
        if self.is_directed() {
            self.num_arcs()
        } else {
            self.num_arcs() / 2
        }
    }

    /// Every out-degree, computed in parallel.
    fn degrees(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .into_par_iter()
            .map(|v| self.degree(v as VertexId))
            .collect()
    }

    /// Materialize this view as a plain heap [`CsrGraph`].
    fn to_csr(&self) -> CsrGraph {
        let n = self.num_vertices();
        let degs = self.degrees();
        let (offsets, total) = graphct_mt::prefix::exclusive_prefix_sum(&degs);
        debug_assert_eq!(total, self.num_arcs());
        let mut targets = vec![0 as VertexId; total];
        // Split `targets` into per-vertex chunks for a safe parallel fill.
        let mut rest: &mut [VertexId] = &mut targets;
        let mut chunks: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        for &d in &degs {
            let (head, tail) = rest.split_at_mut(d);
            chunks.push(head);
            rest = tail;
        }
        chunks.into_par_iter().enumerate().for_each(|(v, chunk)| {
            for (slot, t) in chunk.iter_mut().zip(self.neighbors_iter(v as VertexId)) {
                *slot = t;
            }
        });
        CsrGraph::from_raw_parts(offsets, targets, self.is_directed())
            .expect("a GraphView yields consistent CSR arrays")
    }

    /// The transpose (all arcs reversed) as a plain [`CsrGraph`].
    ///
    /// Kernels that pull along in-edges (direction-optimizing BFS on
    /// directed graphs, Brandes' backward pass) materialize this once
    /// per run regardless of backend.
    fn transpose_csr(&self) -> CsrGraph {
        crate::csr::transpose_of(self)
    }

    /// `true` when every adjacency list is strictly ascending with no
    /// self-loops — the structural precondition of the clustering and
    /// triangle kernels.  The default runs a parallel O(V+E) scan;
    /// [`CsrGraph`] overrides it with a provenance-seeded, memoized
    /// witness so trusted graphs answer in one atomic load.
    fn is_sorted_simple(&self) -> bool {
        (0..self.num_vertices() as VertexId)
            .into_par_iter()
            .all(|v| {
                let mut prev: Option<VertexId> = None;
                for t in self.neighbors_iter(v) {
                    if t == v {
                        return false;
                    }
                    if let Some(p) = prev {
                        if t <= p {
                            return false;
                        }
                    }
                    prev = Some(t);
                }
                true
            })
    }
}

impl GraphView for CsrGraph {
    type Neighbors<'a> = std::iter::Copied<std::slice::Iter<'a, VertexId>>;

    #[inline]
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        CsrGraph::num_arcs(self)
    }

    #[inline]
    fn is_directed(&self) -> bool {
        CsrGraph::is_directed(self)
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    #[inline]
    fn neighbors_iter(&self, v: VertexId) -> Self::Neighbors<'_> {
        self.neighbors(v).iter().copied()
    }

    fn degrees(&self) -> Vec<usize> {
        CsrGraph::degrees(self)
    }

    fn to_csr(&self) -> CsrGraph {
        self.clone()
    }

    fn transpose_csr(&self) -> CsrGraph {
        self.transpose()
    }

    fn is_sorted_simple(&self) -> bool {
        CsrGraph::is_sorted_simple(self)
    }
}

impl GraphView for ReorderedView {
    type Neighbors<'a> = std::iter::Copied<std::slice::Iter<'a, VertexId>>;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.graph().num_vertices()
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.graph().num_arcs()
    }

    #[inline]
    fn is_directed(&self) -> bool {
        self.graph().is_directed()
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        self.graph().degree(v)
    }

    #[inline]
    fn neighbors_iter(&self, v: VertexId) -> Self::Neighbors<'_> {
        self.graph().neighbors(v).iter().copied()
    }

    fn degrees(&self) -> Vec<usize> {
        self.graph().degrees()
    }

    fn to_csr(&self) -> CsrGraph {
        self.graph().clone()
    }

    fn transpose_csr(&self) -> CsrGraph {
        self.graph().transpose()
    }

    fn is_sorted_simple(&self) -> bool {
        // The relabeled CSR inherits its witness from the source graph
        // at construction, so this is usually a cached answer.
        self.graph().is_sorted_simple()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_directed_simple, build_undirected_simple};
    use crate::edge_list::EdgeList;

    fn sample(directed: bool) -> CsrGraph {
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2), (1, 1)]);
        if directed {
            build_directed_simple(&el).unwrap()
        } else {
            build_undirected_simple(&el).unwrap()
        }
    }

    fn assert_view_matches<G: GraphView>(view: &G, g: &CsrGraph) {
        assert_eq!(view.num_vertices(), g.num_vertices());
        assert_eq!(view.num_arcs(), g.num_arcs());
        assert_eq!(view.num_edges(), g.num_edges());
        assert_eq!(view.is_directed(), g.is_directed());
        assert_eq!(GraphView::degrees(view), g.degrees());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(view.degree(v), g.degree(v));
            let nbrs: Vec<VertexId> = view.neighbors_iter(v).collect();
            assert_eq!(nbrs, g.neighbors(v));
        }
    }

    #[test]
    fn csr_implements_its_own_view() {
        for directed in [false, true] {
            let g = sample(directed);
            assert_view_matches(&g, &g);
            assert_eq!(g.to_csr(), g);
            assert_eq!(GraphView::transpose_csr(&g), g.transpose());
        }
    }

    #[test]
    fn generic_to_csr_reconstructs_the_graph() {
        struct IterOnly<'g>(&'g CsrGraph);
        impl GraphView for IterOnly<'_> {
            type Neighbors<'a>
                = std::iter::Copied<std::slice::Iter<'a, VertexId>>
            where
                Self: 'a;
            fn num_vertices(&self) -> usize {
                self.0.num_vertices()
            }
            fn num_arcs(&self) -> usize {
                self.0.num_arcs()
            }
            fn is_directed(&self) -> bool {
                self.0.is_directed()
            }
            fn degree(&self, v: VertexId) -> usize {
                self.0.degree(v)
            }
            fn neighbors_iter(&self, v: VertexId) -> Self::Neighbors<'_> {
                self.0.neighbors(v).iter().copied()
            }
        }
        for directed in [false, true] {
            let g = sample(directed);
            let view = IterOnly(&g);
            // Exercise the *default* implementations, not CsrGraph's overrides.
            assert_eq!(view.to_csr(), g);
            assert_eq!(view.transpose_csr(), g.transpose());
            assert_eq!(view.degrees(), g.degrees());
        }
    }

    #[test]
    fn reordered_view_is_a_graph_view() {
        let g = sample(false);
        let perm = crate::reorder::by_shuffle(&g, 7);
        let view = ReorderedView::with_permutation(&g, perm, crate::reorder::ReorderKind::Shuffle);
        assert_view_matches(&view, view.graph());
        assert_eq!(view.to_csr(), *view.graph());
    }
}
