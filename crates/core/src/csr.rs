//! The compressed-sparse-row graph.

use crate::error::{GraphError, Result};
use crate::types::VertexId;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU8, Ordering};

/// Cached verdict of the "strictly ascending adjacency, no self-loops"
/// scan the triangle/clustering kernels require (a *sorted-simple
/// witness*).  Three states: unknown (never scanned), known-yes, and
/// known-no.  Provenance-trusted constructors (the simple-policy
/// builder, [`CsrGraph::from_simple_sorted_parts`], relabeling a
/// witnessed graph) pre-set known-yes so kernels skip the O(V+E)
/// validation entirely; [`CsrGraph::from_raw_parts`] graphs stay
/// unknown and are scanned — once — on first use.
///
/// The cell is deliberately excluded from equality: it is memoized
/// knowledge *about* the structure, not part of it.
struct SimpleWitness(AtomicU8);

const SIMPLE_UNKNOWN: u8 = 0;
const SIMPLE_YES: u8 = 1;
const SIMPLE_NO: u8 = 2;

impl SimpleWitness {
    const fn unknown() -> Self {
        Self(AtomicU8::new(SIMPLE_UNKNOWN))
    }

    const fn yes() -> Self {
        Self(AtomicU8::new(SIMPLE_YES))
    }

    fn get(&self) -> Option<bool> {
        match self.0.load(Ordering::Relaxed) {
            SIMPLE_YES => Some(true),
            SIMPLE_NO => Some(false),
            _ => None,
        }
    }

    fn set(&self, simple: bool) {
        let state = if simple { SIMPLE_YES } else { SIMPLE_NO };
        self.0.store(state, Ordering::Relaxed);
    }
}

impl Clone for SimpleWitness {
    fn clone(&self) -> Self {
        // The structure a clone copies is immutable, so the verdict
        // transfers with it.
        Self(AtomicU8::new(self.0.load(Ordering::Relaxed)))
    }
}

impl std::fmt::Debug for SimpleWitness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimpleWitness({:?})", self.get())
    }
}

/// A static graph in compressed-sparse-row form (paper §IV-A).
///
/// `offsets` has `n + 1` entries; the out-neighbors of vertex `v` are
/// `targets[offsets[v] .. offsets[v + 1]]`, sorted ascending.  Undirected
/// graphs store each edge in both endpoint lists, so kernels never branch
/// on directedness — they always walk out-neighborhoods.
///
/// The structure is immutable after construction ("the size of the
/// allocated graph is fixed"), which is what lets every kernel share it
/// concurrently without locks.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    directed: bool,
    simple: SimpleWitness,
}

impl PartialEq for CsrGraph {
    fn eq(&self, other: &Self) -> bool {
        // The witness is memoized knowledge, not structure: two equal
        // graphs stay equal whether or not one has been scanned.
        self.offsets == other.offsets
            && self.targets == other.targets
            && self.directed == other.directed
    }
}

impl Eq for CsrGraph {}

impl CsrGraph {
    /// Assemble a graph from raw CSR arrays.
    ///
    /// Invariants checked: `offsets` is non-empty, monotone, starts at 0,
    /// ends at `targets.len()`, and every target is `< n`.  Adjacency
    /// lists are **not** required to be sorted here (the builder sorts);
    /// use [`CsrGraph::is_sorted`] to check.
    pub fn from_raw_parts(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        directed: bool,
    ) -> Result<Self> {
        if offsets.is_empty() {
            return Err(GraphError::Format("offsets array must be non-empty".into()));
        }
        if offsets[0] != 0 {
            return Err(GraphError::Format("offsets must start at zero".into()));
        }
        if *offsets.last().unwrap() != targets.len() {
            return Err(GraphError::Format(format!(
                "last offset {} does not match target count {}",
                offsets.last().unwrap(),
                targets.len()
            )));
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err(GraphError::Format("offsets must be non-decreasing".into()));
        }
        let n = offsets.len() - 1;
        if let Some(&bad) = targets.par_iter().find_any(|&&t| (t as usize) >= n) {
            return Err(GraphError::VertexOutOfRange {
                vertex: bad as u64,
                num_vertices: n as u64,
            });
        }
        Ok(Self {
            offsets,
            targets,
            directed,
            simple: SimpleWitness::unknown(),
        })
    }

    /// Assemble a graph from CSR arrays whose invariants the *caller*
    /// guarantees — the zero-copy freeze path for producers that
    /// maintain CSR structure incrementally (e.g. the streaming graph's
    /// sorted adjacency).
    ///
    /// Unlike [`CsrGraph::from_raw_parts`], nothing is re-validated in
    /// release builds, so the call allocates nothing and touches nothing
    /// beyond the moved vectors.  Debug builds assert the full invariant
    /// set (monotone offsets from 0 to `targets.len()`, in-range
    /// targets), so a lying caller fails loudly under `cargo test`.
    /// This is not `unsafe` — a violated invariant yields wrong query
    /// answers or an index panic later, never memory unsafety.
    pub fn from_sorted_parts(offsets: Vec<usize>, targets: Vec<VertexId>, directed: bool) -> Self {
        debug_assert!(!offsets.is_empty(), "offsets array must be non-empty");
        debug_assert_eq!(offsets[0], 0, "offsets must start at zero");
        debug_assert_eq!(
            *offsets.last().unwrap(),
            targets.len(),
            "last offset must match target count"
        );
        debug_assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        debug_assert!(
            targets.iter().all(|&t| (t as usize) < offsets.len() - 1),
            "every target must be in range"
        );
        let out = Self {
            offsets,
            targets,
            directed,
            simple: SimpleWitness::unknown(),
        };
        debug_assert!(out.is_sorted(), "adjacency lists must arrive sorted");
        out
    }

    /// [`CsrGraph::from_sorted_parts`] with a stronger caller contract:
    /// every adjacency list is *strictly* ascending (no duplicate arcs)
    /// and free of self-loops — a simple graph.  Producers that maintain
    /// that invariant incrementally (the streaming graph's sorted
    /// adjacency) use this so the frozen snapshot carries a known-good
    /// sorted-simple witness and the clustering/triangle kernels skip
    /// their O(V+E) revalidation scan entirely.
    ///
    /// Same validation discipline as `from_sorted_parts`: nothing is
    /// checked in release builds, debug builds assert the full contract.
    pub fn from_simple_sorted_parts(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        directed: bool,
    ) -> Self {
        let out = Self::from_sorted_parts(offsets, targets, directed);
        debug_assert!(
            out.scan_sorted_simple_seq(),
            "adjacency lists must arrive strictly ascending with no self-loops"
        );
        out.simple.set(true);
        out
    }

    /// A graph with `n` vertices and no edges.
    pub fn empty(n: usize, directed: bool) -> Self {
        Self {
            offsets: vec![0; n + 1],
            targets: Vec::new(),
            directed,
            simple: SimpleWitness::yes(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *stored* directed arcs.  For an undirected graph this is
    /// twice the number of undirected edges.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Number of logical edges: arcs for a directed graph, arc-pairs for
    /// an undirected one.
    #[inline]
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.targets.len()
        } else {
            self.targets.len() / 2
        }
    }

    /// `true` if the graph was built as directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted out-neighbor slice of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// `true` if arc `u → v` exists (binary search; requires sorted
    /// adjacency, which the builder guarantees).
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Every out-degree, computed in parallel.
    pub fn degrees(&self) -> Vec<usize> {
        (0..self.num_vertices())
            .into_par_iter()
            .map(|v| self.offsets[v + 1] - self.offsets[v])
            .collect()
    }

    /// Iterate all stored arcs as `(source, target)`.
    pub fn iter_arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |v| self.neighbors(v).iter().map(move |&t| (v, t)))
    }

    /// Borrow the offset array (`n + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Borrow the target array.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// `true` when every adjacency list is sorted ascending.
    pub fn is_sorted(&self) -> bool {
        (0..self.num_vertices() as VertexId)
            .into_par_iter()
            .all(|v| self.neighbors(v).windows(2).all(|w| w[0] <= w[1]))
    }

    /// `true` when every adjacency list is strictly ascending (no
    /// duplicate arcs) and free of self-loops — the precondition of the
    /// clustering/triangle kernels.
    ///
    /// The verdict is cached: provenance-trusted constructors (the
    /// simple-policy builder, [`CsrGraph::from_simple_sorted_parts`],
    /// relabeling or transposing an already-witnessed graph) pre-seed
    /// it, so for those graphs this is one relaxed atomic load.  A
    /// [`CsrGraph::from_raw_parts`] graph pays the parallel O(V+E) scan
    /// exactly once, then remembers the answer — the structure is
    /// immutable, so the verdict can never go stale.
    pub fn is_sorted_simple(&self) -> bool {
        if let Some(known) = self.simple.get() {
            return known;
        }
        let verdict = self.scan_sorted_simple();
        self.simple.set(verdict);
        verdict
    }

    /// The cached sorted-simple verdict without triggering a scan:
    /// `Some(_)` once known (pre-seeded by a trusted constructor or
    /// memoized by [`CsrGraph::is_sorted_simple`]), `None` when this
    /// graph has never been validated.
    pub fn sorted_simple_hint(&self) -> Option<bool> {
        self.simple.get()
    }

    /// Record that this graph is known sorted-simple through provenance
    /// (crate-internal: callers must actually guarantee it).
    pub(crate) fn mark_sorted_simple(&self) {
        debug_assert!(
            self.scan_sorted_simple_seq(),
            "mark_sorted_simple on a graph that is not sorted-simple"
        );
        self.simple.set(true);
    }

    /// The uncached full scan behind [`CsrGraph::is_sorted_simple`].
    fn scan_sorted_simple(&self) -> bool {
        (0..self.num_vertices() as VertexId)
            .into_par_iter()
            .all(|v| {
                let nbrs = self.neighbors(v);
                nbrs.windows(2).all(|w| w[0] < w[1]) && !nbrs.contains(&v)
            })
    }

    /// Sequential, allocation-free variant of the scan for use in
    /// `debug_assert!`s on paths whose tests meter heap allocation
    /// (the streaming snapshot's memory-budget test).
    fn scan_sorted_simple_seq(&self) -> bool {
        (0..self.num_vertices() as VertexId).all(|v| {
            let nbrs = self.neighbors(v);
            nbrs.windows(2).all(|w| w[0] < w[1]) && !nbrs.contains(&v)
        })
    }

    /// `true` when the stored arcs are symmetric (`u→v` implies `v→u`) —
    /// the structural invariant of an undirected graph.
    pub fn is_symmetric(&self) -> bool {
        (0..self.num_vertices() as VertexId)
            .into_par_iter()
            .all(|u| self.neighbors(u).iter().all(|&v| self.has_edge(v, u)))
    }

    /// Number of self-loop arcs stored.
    pub fn count_self_loops(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .into_par_iter()
            .map(|v| self.neighbors(v).iter().filter(|&&t| t == v).count())
            .sum()
    }

    /// The transpose (all arcs reversed).  For symmetric graphs this is
    /// structurally identical.
    ///
    /// Peak extra memory is one `targets`-sized buffer: arcs are
    /// scattered straight into the output through per-vertex cursors
    /// rather than staged in an atomic shadow copy.
    pub fn transpose(&self) -> CsrGraph {
        let out = transpose_of(self);
        // Reversing arcs preserves simplicity: loops map to loops and
        // duplicate arcs to duplicate arcs, and `transpose_of` re-sorts.
        if self.sorted_simple_hint() == Some(true) {
            out.simple.set(true);
        }
        out
    }

    /// Sort every adjacency list ascending (parallel over vertices).
    pub(crate) fn sort_adjacency(&mut self) {
        let offsets = &self.offsets;
        let n = offsets.len() - 1;
        // Split `targets` into per-vertex chunks for safe parallel sorting.
        let mut rest: &mut [VertexId] = &mut self.targets;
        let mut chunks: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        let mut consumed = 0usize;
        for v in 0..n {
            let len = offsets[v + 1] - offsets[v];
            let (head, tail) = rest.split_at_mut(len);
            chunks.push(head);
            rest = tail;
            consumed += len;
        }
        debug_assert_eq!(consumed, *offsets.last().unwrap());
        chunks.into_par_iter().for_each(|c| c.sort_unstable());
    }

    /// Memory footprint of the CSR arrays in bytes (paper §V reports the
    /// "naive storage format" size of the September 2009 graph).
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
    }
}

/// Transpose any [`GraphView`](crate::view::GraphView) into a plain CSR.
///
/// In-degrees are counted, prefix-summed into the output offsets, and
/// every arc is then scattered *directly* into the pre-sized target
/// buffer: each `fetch_add` cursor ticket names a distinct slot, so each
/// cell is written exactly once and plain stores through a shared
/// pointer are race-free.  The previous implementation staged the
/// scatter in a `Vec<AtomicU32>` shadow of `targets`, doubling peak
/// memory on exactly the large graphs the mmap/compressed backends
/// exist for.
pub(crate) fn transpose_of<G: crate::view::GraphView + ?Sized>(graph: &G) -> CsrGraph {
    let n = graph.num_vertices();
    // Count in-degrees.
    let in_deg = graphct_mt::AtomicUsizeArray::zeros(n);
    (0..n as VertexId).into_par_iter().for_each(|u| {
        for v in graph.neighbors_iter(u) {
            in_deg.fetch_add(v as usize, 1);
        }
    });
    let (offsets, total) = graphct_mt::prefix::exclusive_prefix_sum(&in_deg.to_vec());
    debug_assert_eq!(total, graph.num_arcs());
    let cursor = graphct_mt::AtomicUsizeArray::from_vec(offsets[..n].to_vec());
    let mut targets = vec![0 as VertexId; total];
    {
        struct Cells(*mut VertexId);
        // SAFETY: shared only so each thread can write the disjoint
        // slots its cursor tickets name.
        unsafe impl Sync for Cells {}
        let cells = Cells(targets.as_mut_ptr());
        let cells = &cells;
        (0..n as VertexId).into_par_iter().for_each(|u| {
            for v in graph.neighbors_iter(u) {
                let slot = cursor.fetch_add(v as usize, 1);
                // SAFETY: `slot < total` — cursor `v` starts at
                // `offsets[v]` and is bumped once per in-arc of `v`,
                // never passing `offsets[v + 1]` — and every ticket is
                // handed out exactly once.
                unsafe { *cells.0.add(slot) = u };
            }
        });
    }
    // Sort each adjacency list (scatter order is scheduling-dependent).
    let mut out = CsrGraph {
        offsets,
        targets,
        directed: graph.is_directed(),
        simple: SimpleWitness::unknown(),
    };
    out.sort_adjacency();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> CsrGraph {
        // 0-1, 1-2, 0-2 undirected
        CsrGraph::from_raw_parts(vec![0, 2, 4, 6], vec![1, 2, 0, 2, 0, 1], false).unwrap()
    }

    #[test]
    fn raw_parts_validation() {
        assert!(CsrGraph::from_raw_parts(vec![], vec![], true).is_err());
        assert!(CsrGraph::from_raw_parts(vec![1, 2], vec![0, 0], true).is_err());
        assert!(CsrGraph::from_raw_parts(vec![0, 1], vec![], true).is_err());
        assert!(CsrGraph::from_raw_parts(vec![0, 2, 1], vec![0], true).is_err());
        // target out of range
        assert!(matches!(
            CsrGraph::from_raw_parts(vec![0, 1], vec![5], true),
            Err(GraphError::VertexOutOfRange { .. })
        ));
    }

    #[test]
    fn triangle_basics() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_arcs(), 6);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.is_directed());
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert!(g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.degrees(), vec![2, 2, 2]);
        assert!(g.is_sorted());
        assert!(g.is_symmetric());
        assert_eq!(g.count_self_loops(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(4, true);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert!(g.neighbors(0).is_empty());
        assert_eq!(g.iter_arcs().count(), 0);
    }

    #[test]
    fn directed_edge_count_and_asymmetry() {
        // 0→1, 0→2, 1→2
        let g = CsrGraph::from_raw_parts(vec![0, 2, 3, 3], vec![1, 2, 2], true).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_arcs(), 3);
        assert!(!g.is_symmetric());
        let arcs: Vec<_> = g.iter_arcs().collect();
        assert_eq!(arcs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn transpose_reverses_arcs() {
        let g = CsrGraph::from_raw_parts(vec![0, 2, 3, 3], vec![1, 2, 2], true).unwrap();
        let t = g.transpose();
        assert_eq!(t.num_arcs(), 3);
        assert_eq!(t.neighbors(0), &[] as &[VertexId]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert!(t.is_sorted());
    }

    #[test]
    fn transpose_of_symmetric_is_identical() {
        let g = triangle();
        let t = g.transpose();
        assert_eq!(g, t);
    }

    #[test]
    fn self_loops_counted() {
        let g = CsrGraph::from_raw_parts(vec![0, 1, 2], vec![0, 1], true).unwrap();
        assert_eq!(g.count_self_loops(), 2);
    }

    #[test]
    fn memory_bytes_positive() {
        let g = triangle();
        assert_eq!(
            g.memory_bytes(),
            4 * std::mem::size_of::<usize>() + 6 * std::mem::size_of::<VertexId>()
        );
    }

    #[test]
    fn raw_parts_witness_starts_unknown_and_memoizes() {
        let g = CsrGraph::from_raw_parts(vec![0, 2, 3, 4], vec![1, 2, 2, 1], false).unwrap();
        assert_eq!(g.sorted_simple_hint(), None, "no scan has happened yet");
        assert!(g.is_sorted_simple());
        assert_eq!(g.sorted_simple_hint(), Some(true), "verdict memoized");
    }

    #[test]
    fn non_simple_verdict_is_cached_too() {
        // Self-loop at vertex 0.
        let with_loop = CsrGraph::from_raw_parts(vec![0, 2, 3], vec![0, 1, 0], false).unwrap();
        assert!(!with_loop.is_sorted_simple());
        assert_eq!(with_loop.sorted_simple_hint(), Some(false));
        // Duplicate arc 0→1 (sorted but not strictly ascending).
        let with_dup = CsrGraph::from_raw_parts(vec![0, 2, 2], vec![1, 1], true).unwrap();
        assert!(!with_dup.is_sorted_simple());
    }

    #[test]
    fn trusted_constructors_preseed_the_witness() {
        assert_eq!(
            CsrGraph::empty(4, false).sorted_simple_hint(),
            Some(true),
            "empty graph is vacuously simple"
        );
        let g = CsrGraph::from_simple_sorted_parts(vec![0, 1, 2], vec![1, 0], false);
        assert_eq!(g.sorted_simple_hint(), Some(true));
    }

    #[test]
    fn witness_survives_clone_and_transpose() {
        let g = CsrGraph::from_simple_sorted_parts(vec![0, 2, 3, 4], vec![1, 2, 0, 0], true);
        assert_eq!(g.clone().sorted_simple_hint(), Some(true));
        assert_eq!(
            g.transpose().sorted_simple_hint(),
            Some(true),
            "transposing a simple graph keeps it simple"
        );
        // An unwitnessed source stays unwitnessed through transpose.
        let raw = CsrGraph::from_raw_parts(vec![0, 1, 2], vec![1, 0], false).unwrap();
        assert_eq!(raw.transpose().sorted_simple_hint(), None);
    }

    #[test]
    fn equality_ignores_the_witness() {
        let seeded = CsrGraph::from_simple_sorted_parts(vec![0, 1, 2], vec![1, 0], false);
        let raw = CsrGraph::from_raw_parts(vec![0, 1, 2], vec![1, 0], false).unwrap();
        assert_eq!(seeded.sorted_simple_hint(), Some(true));
        assert_eq!(raw.sorted_simple_hint(), None);
        assert_eq!(seeded, raw, "memoized knowledge is not structure");
    }
}
