//! Error type shared by graph construction and I/O.

use std::fmt;

/// Errors produced by graph construction, validation, and I/O.
#[derive(Debug)]
pub enum GraphError {
    /// An underlying I/O failure (file open, read, write).
    Io(std::io::Error),
    /// A text format could not be parsed. Carries line number (1-based)
    /// and a description.
    Parse { line: usize, message: String },
    /// A binary file had the wrong magic bytes or inconsistent headers.
    Format(String),
    /// A vertex id referenced outside `0..num_vertices`.
    VertexOutOfRange { vertex: u64, num_vertices: u64 },
    /// A request that needs a non-empty graph got an empty one.
    EmptyGraph,
    /// An argument was outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Format(m) => write!(f, "format error: {m}"),
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
            GraphError::EmptyGraph => write!(f, "operation requires a non-empty graph"),
            GraphError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, GraphError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad token");
        assert!(GraphError::EmptyGraph.to_string().contains("non-empty"));
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&GraphError::EmptyGraph).is_none());
    }
}
