//! Parallel CSR construction from edge lists.

use crate::csr::CsrGraph;
use crate::edge_list::EdgeList;
use crate::error::{GraphError, Result};
use crate::types::VertexId;
use graphct_mt::{prefix, AtomicUsizeArray};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// What to do with repeated edges.
///
/// The Twitter ingest keeps only unique user interactions (paper §III-B:
/// "Duplicate user interactions are thrown out so that only unique
/// user-interactions are represented in the graph"), but generators such
/// as R-MAT naturally emit duplicates that some experiments want to keep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Collapse repeated edges into one.
    #[default]
    Dedup,
    /// Keep the multigraph as given.
    Keep,
}

/// What to do with self-loop edges (`u == v`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelfLoopPolicy {
    /// Remove self-loops (the default; the Twitter pipeline accounts for
    /// "self-referring vertices" separately before graph construction).
    #[default]
    Drop,
    /// Keep self-loops.  In an undirected graph a kept loop is stored as
    /// two identical arcs, so that `num_edges() = num_arcs() / 2` remains
    /// exact and the loop contributes 2 to its endpoint's degree (the
    /// standard multigraph convention).
    Keep,
}

/// Configurable parallel builder producing a [`CsrGraph`].
///
/// ```
/// use graphct_core::{EdgeList, GraphBuilder};
/// let edges = EdgeList::from_pairs(vec![(0, 1), (1, 2), (1, 2), (2, 2)]);
/// let g = GraphBuilder::undirected().build(&edges).unwrap();
/// assert_eq!(g.num_vertices(), 3);
/// assert_eq!(g.num_edges(), 2); // duplicate collapsed, self-loop dropped
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    directed: bool,
    num_vertices: Option<usize>,
    duplicates: DuplicatePolicy,
    self_loops: SelfLoopPolicy,
}

impl GraphBuilder {
    /// Build an undirected graph (each input edge stored in both
    /// adjacency lists).
    pub fn undirected() -> Self {
        Self {
            directed: false,
            num_vertices: None,
            duplicates: DuplicatePolicy::default(),
            self_loops: SelfLoopPolicy::default(),
        }
    }

    /// Build a directed graph.
    pub fn directed() -> Self {
        Self {
            directed: true,
            ..Self::undirected()
        }
    }

    /// Fix the vertex count instead of inferring `max id + 1`.  Edges
    /// referencing vertices `>= n` make [`GraphBuilder::build`] fail.
    pub fn num_vertices(mut self, n: usize) -> Self {
        self.num_vertices = Some(n);
        self
    }

    /// Set the duplicate-edge policy.
    pub fn duplicates(mut self, policy: DuplicatePolicy) -> Self {
        self.duplicates = policy;
        self
    }

    /// Set the self-loop policy.
    pub fn self_loops(mut self, policy: SelfLoopPolicy) -> Self {
        self.self_loops = policy;
        self
    }

    /// Construct the CSR graph.
    pub fn build(&self, edges: &EdgeList) -> Result<CsrGraph> {
        let inferred = edges.min_num_vertices();
        let n = match self.num_vertices {
            Some(n) => {
                if inferred > n {
                    let bad = edges
                        .as_slice()
                        .par_iter()
                        .map(|&(s, t)| s.max(t))
                        .max()
                        .unwrap_or(0);
                    return Err(GraphError::VertexOutOfRange {
                        vertex: bad as u64,
                        num_vertices: n as u64,
                    });
                }
                n
            }
            None => inferred,
        };

        // 1. Filter self-loops, canonicalize for the undirected case.
        let mut pairs: Vec<(VertexId, VertexId)> = edges
            .as_slice()
            .par_iter()
            .copied()
            .filter(|&(s, t)| s != t || matches!(self.self_loops, SelfLoopPolicy::Keep))
            .map(|(s, t)| {
                if !self.directed && s > t {
                    (t, s)
                } else {
                    (s, t)
                }
            })
            .collect();

        // 2. Deduplicate on the canonical pair.
        if matches!(self.duplicates, DuplicatePolicy::Dedup) {
            pairs.par_sort_unstable();
            pairs.dedup();
        }

        // 3. Expand to stored arcs. Undirected edges, including kept
        //    self-loops, produce two arcs each.
        let arcs: Vec<(VertexId, VertexId)> = if self.directed {
            pairs
        } else {
            pairs
                .into_par_iter()
                .flat_map_iter(|(s, t)| [(s, t), (t, s)])
                .collect()
        };

        // 4. Counting sort into CSR: degree count, prefix sum, scatter.
        let deg = AtomicUsizeArray::zeros(n);
        arcs.par_iter().for_each(|&(s, _)| {
            deg.fetch_add(s as usize, 1);
        });
        let (offsets, total) = prefix::exclusive_prefix_sum(&deg.to_vec());
        debug_assert_eq!(total, arcs.len());

        let cursor = AtomicUsizeArray::from_vec(offsets[..n].to_vec());
        let slots: Vec<AtomicU32> = (0..total).map(|_| AtomicU32::new(0)).collect();
        arcs.par_iter().for_each(|&(s, t)| {
            let slot = cursor.fetch_add(s as usize, 1);
            slots[slot].store(t, Ordering::Relaxed);
        });
        let targets: Vec<VertexId> = slots.into_par_iter().map(AtomicU32::into_inner).collect();

        let mut graph = CsrGraph::from_raw_parts(offsets, targets, self.directed)?;
        graph.sort_adjacency();
        if matches!(self.duplicates, DuplicatePolicy::Dedup)
            && matches!(self.self_loops, SelfLoopPolicy::Drop)
        {
            // Dedup + Drop guarantees a simple graph, and the lists were
            // just sorted: seed the sorted-simple witness so clustering
            // and triangle kernels skip their validation scan.
            graph.mark_sorted_simple();
        }
        Ok(graph)
    }
}

/// Shorthand for the most common configuration: a simple undirected graph
/// (duplicates collapsed, self-loops dropped) — the shape of the paper's
/// Twitter user-to-user graphs.
pub fn build_undirected_simple(edges: &EdgeList) -> Result<CsrGraph> {
    GraphBuilder::undirected().build(edges)
}

/// Shorthand for a simple directed graph (duplicates collapsed,
/// self-loops dropped).
pub fn build_directed_simple(edges: &EdgeList) -> Result<CsrGraph> {
    GraphBuilder::directed().build(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(v: &[(u32, u32)]) -> EdgeList {
        EdgeList::from_pairs(v.to_vec())
    }

    #[test]
    fn undirected_symmetrizes_and_sorts() {
        let g = GraphBuilder::undirected()
            .build(&pairs(&[(2, 0), (0, 1)]))
            .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0]);
        assert!(g.is_symmetric());
        assert!(g.is_sorted());
    }

    #[test]
    fn dedup_collapses_both_orientations() {
        // (0,1) and (1,0) are the same undirected edge.
        let g = GraphBuilder::undirected()
            .build(&pairs(&[(0, 1), (1, 0), (0, 1)]))
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        // Directed dedup keeps both orientations as distinct edges.
        let d = GraphBuilder::directed()
            .build(&pairs(&[(0, 1), (1, 0), (0, 1)]))
            .unwrap();
        assert_eq!(d.num_edges(), 2);
    }

    #[test]
    fn keep_duplicates_preserves_multigraph() {
        let g = GraphBuilder::undirected()
            .duplicates(DuplicatePolicy::Keep)
            .build(&pairs(&[(0, 1), (0, 1)]))
            .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn self_loops_dropped_by_default() {
        let g = GraphBuilder::undirected()
            .build(&pairs(&[(0, 0), (0, 1)]))
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.count_self_loops(), 0);
    }

    #[test]
    fn kept_undirected_self_loop_counts_twice_in_degree() {
        let g = GraphBuilder::undirected()
            .self_loops(SelfLoopPolicy::Keep)
            .duplicates(DuplicatePolicy::Keep)
            .build(&pairs(&[(0, 0), (0, 1)]))
            .unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 3); // loop twice + edge once
        assert_eq!(g.count_self_loops(), 2);
    }

    #[test]
    fn kept_directed_self_loop_is_single_arc() {
        let g = GraphBuilder::directed()
            .self_loops(SelfLoopPolicy::Keep)
            .build(&pairs(&[(0, 0), (0, 1)]))
            .unwrap();
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.count_self_loops(), 1);
    }

    #[test]
    fn explicit_vertex_count_pads_isolated_vertices() {
        let g = GraphBuilder::undirected()
            .num_vertices(10)
            .build(&pairs(&[(0, 1)]))
            .unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(9), 0);
    }

    #[test]
    fn out_of_range_vertex_rejected() {
        let err = GraphBuilder::undirected()
            .num_vertices(2)
            .build(&pairs(&[(0, 5)]))
            .unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }

    #[test]
    fn empty_edge_list() {
        let g = GraphBuilder::undirected().build(&EdgeList::new()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        let g = GraphBuilder::directed()
            .num_vertices(3)
            .build(&EdgeList::new())
            .unwrap();
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn directed_preserves_orientation() {
        let g = build_directed_simple(&pairs(&[(2, 1), (1, 0)])).unwrap();
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(1, 2));
        assert!(g.has_edge(1, 0));
        assert!(!g.is_symmetric());
    }

    #[test]
    fn large_random_graph_invariants() {
        // Deterministic pseudo-random edges; checks the parallel scatter
        // produces a consistent, sorted, symmetric structure.
        let mut v = Vec::new();
        let mut x = 12345u64;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = ((x >> 33) % 1000) as u32;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let t = ((x >> 33) % 1000) as u32;
            v.push((s, t));
        }
        let g = build_undirected_simple(&pairs(&v)).unwrap();
        assert!(g.is_sorted());
        assert!(g.is_symmetric());
        assert_eq!(g.count_self_loops(), 0);
        assert_eq!(g.num_arcs() % 2, 0);
        // No duplicate neighbors anywhere.
        for u in 0..g.num_vertices() as u32 {
            let nb = g.neighbors(u);
            assert!(nb.windows(2).all(|w| w[0] < w[1]), "dup at {u}");
        }
    }
}
