//! DIMACS graph text format.
//!
//! The classic DIMACS challenge format (paper ref. [2]):
//!
//! ```text
//! c this is a comment
//! p sp <num-vertices> <num-edges>
//! a <src> <dst> <weight>
//! ```
//!
//! Vertices are 1-indexed in the file and shifted to 0-indexed ids on
//! read.  `e` lines (the unweighted variant) are accepted alongside `a`
//! lines; weights are parsed for validation but discarded (GraphCT's
//! kernels are unweighted).
//!
//! GraphCT parses large DIMACS files *in parallel* after slurping them
//! into memory (§IV-C: "We copy the file from disk to the main memory …
//! and parse the file in parallel"); we do the same with rayon over line
//! chunks.

use crate::edge_list::EdgeList;
use crate::error::{GraphError, Result};
use crate::types::VertexId;
use rayon::prelude::*;
use std::io::Write;
use std::path::Path;

/// Declared sizes from the `p` line plus the parsed edges.
#[derive(Debug, Clone)]
pub struct DimacsGraph {
    /// Vertex count declared on the `p` line.
    pub num_vertices: usize,
    /// Edge count declared on the `p` line.
    pub declared_edges: usize,
    /// Parsed edges, 0-indexed.
    pub edges: EdgeList,
}

/// Parse DIMACS text already in memory (parallel over lines).
pub fn parse_str(text: &str) -> Result<DimacsGraph> {
    // Locate the problem line sequentially (it must precede edges and is
    // near the top in practice).
    let mut num_vertices = None;
    let mut declared_edges = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.starts_with('p') {
            let mut it = line.split_whitespace();
            let _p = it.next();
            let _kind = it.next(); // "sp", "edge", … — accepted, unused
            let n: usize =
                it.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| GraphError::Parse {
                        line: i + 1,
                        message: "problem line missing vertex count".into(),
                    })?;
            let m: usize =
                it.next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| GraphError::Parse {
                        line: i + 1,
                        message: "problem line missing edge count".into(),
                    })?;
            num_vertices = Some(n);
            declared_edges = m;
            break;
        } else if line.starts_with('a') || line.starts_with('e') {
            return Err(GraphError::Parse {
                line: i + 1,
                message: "edge line before problem line".into(),
            });
        }
    }
    let num_vertices = num_vertices.ok_or_else(|| GraphError::Parse {
        line: 0,
        message: "no problem ('p') line found".into(),
    })?;

    // Parallel edge parsing: collect lines once, then fold per-thread
    // edge vectors. Line numbers are preserved for error reporting.
    let lines: Vec<(usize, &str)> = text.lines().enumerate().collect();
    let parsed: std::result::Result<Vec<Vec<(VertexId, VertexId)>>, GraphError> =
        lines
            .par_chunks(4096)
            .map(|chunk| {
                let mut local = Vec::with_capacity(chunk.len());
                for &(i, raw) in chunk {
                    let line = raw.trim();
                    if line.is_empty() || line.starts_with('c') || line.starts_with('p') {
                        continue;
                    }
                    let mut it = line.split_whitespace();
                    let tag = it.next().unwrap();
                    if tag != "a" && tag != "e" {
                        return Err(GraphError::Parse {
                            line: i + 1,
                            message: format!("unknown line tag '{tag}'"),
                        });
                    }
                    let src: u64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                        GraphError::Parse {
                            line: i + 1,
                            message: "missing/invalid source vertex".into(),
                        }
                    })?;
                    let dst: u64 = it.next().and_then(|t| t.parse().ok()).ok_or_else(|| {
                        GraphError::Parse {
                            line: i + 1,
                            message: "missing/invalid target vertex".into(),
                        }
                    })?;
                    // Optional weight — validated as numeric when present.
                    if let Some(w) = it.next() {
                        if w.parse::<f64>().is_err() {
                            return Err(GraphError::Parse {
                                line: i + 1,
                                message: format!("invalid weight '{w}'"),
                            });
                        }
                    }
                    if src == 0 || dst == 0 {
                        return Err(GraphError::Parse {
                            line: i + 1,
                            message: "DIMACS vertices are 1-indexed; found 0".into(),
                        });
                    }
                    if src as usize > num_vertices || dst as usize > num_vertices {
                        return Err(GraphError::VertexOutOfRange {
                            vertex: src.max(dst),
                            num_vertices: num_vertices as u64,
                        });
                    }
                    local.push(((src - 1) as VertexId, (dst - 1) as VertexId));
                }
                Ok(local)
            })
            .collect();

    let mut edges = EdgeList::with_capacity(declared_edges);
    for chunk in parsed? {
        for (s, t) in chunk {
            edges.push(s, t);
        }
    }
    Ok(DimacsGraph {
        num_vertices,
        declared_edges,
        edges,
    })
}

/// Read and parse a DIMACS file.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<DimacsGraph> {
    let text = std::fs::read_to_string(path)?;
    parse_str(&text)
}

/// Write an edge list as DIMACS text (1-indexed, weight 1).
pub fn write_file<P: AsRef<Path>>(path: P, num_vertices: usize, edges: &EdgeList) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "c written by graphct-rs")?;
    writeln!(w, "p sp {} {}", num_vertices, edges.len())?;
    for &(s, t) in edges.as_slice() {
        writeln!(w, "a {} {} 1", s + 1, t + 1)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "c comment line\n\
                          p sp 4 3\n\
                          a 1 2 5\n\
                          a 2 3 1\n\
                          e 3 4\n";

    #[test]
    fn parses_sample() {
        let g = parse_str(SAMPLE).unwrap();
        assert_eq!(g.num_vertices, 4);
        assert_eq!(g.declared_edges, 3);
        assert_eq!(g.edges.as_slice(), &[(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn rejects_missing_problem_line() {
        assert!(matches!(
            parse_str("c nothing\n"),
            Err(GraphError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_edge_before_problem_line() {
        let err = parse_str("a 1 2 1\np sp 2 1\n").unwrap_err();
        assert!(err.to_string().contains("before problem line"));
    }

    #[test]
    fn rejects_zero_indexed_vertex() {
        let err = parse_str("p sp 2 1\na 0 1 1\n").unwrap_err();
        assert!(err.to_string().contains("1-indexed"));
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let err = parse_str("p sp 2 1\na 1 7 1\n").unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 7, .. }
        ));
    }

    #[test]
    fn rejects_bad_tag_and_bad_weight() {
        assert!(parse_str("p sp 2 1\nz 1 2\n").is_err());
        assert!(parse_str("p sp 2 1\na 1 2 abc\n").is_err());
    }

    #[test]
    fn weight_is_optional() {
        let g = parse_str("p sp 2 1\ne 1 2\n").unwrap();
        assert_eq!(g.edges.len(), 1);
    }

    #[test]
    fn roundtrip_through_file() {
        let dir = std::env::temp_dir().join("graphct_dimacs_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.gr");
        let edges = EdgeList::from_pairs(vec![(0, 1), (1, 2), (0, 3)]);
        write_file(&path, 4, &edges).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.num_vertices, 4);
        assert_eq!(back.edges, edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn large_input_parses_in_parallel() {
        // Enough lines to exercise multiple parallel chunks.
        let n = 20_000usize;
        let mut text = format!("p sp {n} {}\n", n - 1);
        for i in 1..n {
            text.push_str(&format!("a {} {} 1\n", i, i + 1));
        }
        let g = parse_str(&text).unwrap();
        assert_eq!(g.edges.len(), n - 1);
        assert_eq!(g.edges.as_slice()[0], (0, 1));
        assert_eq!(g.edges.as_slice()[n - 2], ((n - 2) as u32, (n - 1) as u32));
    }
}
