//! GraphCT's internal binary CSR format.
//!
//! Format v2 layout (little-endian):
//!
//! ```text
//! magic    8 bytes  "GRAPHCT\x02"
//! flags    1 byte   bit 0 = directed
//! reserved 7 bytes  must be zero (pads the header to 32 bytes)
//! n        8 bytes  vertex count (u64), at byte 16
//! m        8 bytes  stored-arc count (u64), at byte 24
//! offsets  (n + 1) × 8 bytes (u64 each), at byte 32 (8-aligned)
//! targets  m × 4 bytes (u32 each), at byte 32 + 8(n + 1) (4-aligned)
//! ```
//!
//! v2 differs from v1 only in the magic's version byte and the seven
//! reserved padding bytes: the 32-byte header makes every section start
//! at a multiple of its element size, so a memory-mapped file
//! ([`crate::io::mmap::MmapCsr`]) reads offsets and targets in place as
//! fixed-width little-endian words.  [`read`] accepts both versions
//! (v1 files lack the padding); [`write`] always emits v2.
//!
//! This is the `comp1.bin` of the paper's example script (§IV-B): a graph
//! or extracted component saved to disk and restored without re-parsing
//! text.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::types::VertexId;
use std::io::{Read, Write};
use std::path::Path;

/// The v1 magic (25-byte packed header, read-only compatibility).
pub(crate) const MAGIC_V1: &[u8; 8] = b"GRAPHCT\x01";
/// The v2 magic (32-byte aligned header; what [`write`] emits).
pub(crate) const MAGIC_V2: &[u8; 8] = b"GRAPHCT\x02";
/// Size of the v2 header in bytes.
pub(crate) const HEADER_V2: usize = 32;

/// Serialize a graph to `writer` (format v2).
pub fn write<W: Write>(graph: &CsrGraph, writer: &mut W) -> Result<()> {
    writer.write_all(MAGIC_V2)?;
    writer.write_all(&[graph.is_directed() as u8])?;
    writer.write_all(&[0u8; 7])?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(graph.num_arcs() as u64).to_le_bytes())?;
    // Buffered conversion keeps peak extra memory at one chunk.
    let mut buf = Vec::with_capacity(8 * 4096);
    for chunk in graph.offsets().chunks(4096) {
        buf.clear();
        for &o in chunk {
            buf.extend_from_slice(&(o as u64).to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    for chunk in graph.targets().chunks(8192) {
        buf.clear();
        for &t in chunk {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Vertex-count ceiling: ids are `u32`, so any header claiming more is
/// corrupt, and rejecting it here keeps a flipped length byte from
/// driving a giant allocation.
pub(crate) const MAX_VERTICES: u64 = 1 << 32;

/// `read_exact` with the section name folded into the error: a short
/// read becomes a [`GraphError::Format`] naming the truncated section
/// instead of a bare EOF.
fn read_exact_section<R: Read>(reader: &mut R, buf: &mut [u8], section: &str) -> Result<()> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            GraphError::Format(format!("truncated {section} section"))
        } else {
            GraphError::Io(e)
        }
    })
}

/// Grow `out`'s capacity to hold `extra` more values without trusting
/// the header's claim beyond the bytes backing it: capacity doubles
/// (geometric, so reallocation-copies stay logarithmic in the section
/// size rather than overshooting multi-GB vectors), is never less than
/// what this verified chunk needs, and never exceeds `count` — the
/// final allocation lands exactly on the section size instead of the
/// up-to-2× overshoot of amortized `extend` growth.
#[inline]
fn reserve_verified<T>(out: &mut Vec<T>, extra: usize, count: usize) {
    if out.capacity() < out.len() + extra {
        let target = (out.capacity() * 2).clamp(out.len() + extra, count);
        out.reserve_exact(target - out.len());
    }
}

/// Stream `count` little-endian `u64`s through a fixed buffer.  The
/// claimed `count` bounds only the loop and caps the reservation —
/// output capacity grows with bytes actually read, so a corrupt header
/// cannot force an allocation larger than ~2× the input itself.
fn read_u64_values<R: Read>(reader: &mut R, count: usize, section: &str) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    let mut buf = [0u8; 8192];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(buf.len() / 8);
        let bytes = &mut buf[..take * 8];
        read_exact_section(reader, bytes, section)?;
        reserve_verified(&mut out, take, count);
        out.extend(
            bytes
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().unwrap())),
        );
        remaining -= take;
    }
    Ok(out)
}

/// Stream `count` little-endian `u32`s through a fixed buffer (same
/// no-trust-the-header allocation policy as [`read_u64_values`]).
fn read_u32_values<R: Read>(reader: &mut R, count: usize, section: &str) -> Result<Vec<u32>> {
    let mut out = Vec::new();
    let mut buf = [0u8; 8192];
    let mut remaining = count;
    while remaining > 0 {
        let take = remaining.min(buf.len() / 4);
        let bytes = &mut buf[..take * 4];
        read_exact_section(reader, bytes, section)?;
        reserve_verified(&mut out, take, count);
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        remaining -= take;
    }
    Ok(out)
}

/// Deserialize a graph from `reader`.
///
/// Corrupt or truncated input of any kind — short reads at every
/// section boundary, a bad magic, unknown flags, header counts that
/// exceed the id space, or an offsets array that disagrees with the
/// claimed target count — returns a [`GraphError`]; this function never
/// panics and never sizes an allocation from an unvalidated header
/// field.
pub fn read<R: Read>(reader: &mut R) -> Result<CsrGraph> {
    let mut magic = [0u8; 8];
    read_exact_section(reader, &mut magic, "magic")?;
    let version = match &magic {
        m if m == MAGIC_V1 => 1u8,
        m if m == MAGIC_V2 => 2u8,
        _ => return Err(GraphError::Format("bad magic: not a GraphCT binary".into())),
    };
    let mut flags = [0u8; 1];
    read_exact_section(reader, &mut flags, "flags")?;
    if flags[0] > 1 {
        return Err(GraphError::Format(format!(
            "unknown flags byte {}",
            flags[0]
        )));
    }
    let directed = flags[0] == 1;
    if version == 2 {
        let mut reserved = [0u8; 7];
        read_exact_section(reader, &mut reserved, "header")?;
        if reserved != [0u8; 7] {
            return Err(GraphError::Format(
                "reserved header bytes must be zero".into(),
            ));
        }
    }
    let mut u64buf = [0u8; 8];
    read_exact_section(reader, &mut u64buf, "header")?;
    let n64 = u64::from_le_bytes(u64buf);
    if n64 >= MAX_VERTICES {
        return Err(GraphError::Format(format!(
            "vertex count {n64} exceeds the u32 id space"
        )));
    }
    read_exact_section(reader, &mut u64buf, "header")?;
    let m64 = u64::from_le_bytes(u64buf);
    let n = usize::try_from(n64)
        .map_err(|_| GraphError::Format(format!("vertex count {n64} overflows usize")))?;
    let m = usize::try_from(m64)
        .map_err(|_| GraphError::Format(format!("arc count {m64} overflows usize")))?;

    let offsets: Vec<usize> = read_u64_values(reader, n + 1, "offsets")?
        .into_iter()
        .map(|o| {
            usize::try_from(o)
                .map_err(|_| GraphError::Format(format!("offset {o} overflows usize")))
        })
        .collect::<Result<_>>()?;
    // Cross-check before touching the targets section: the final offset
    // *is* the target count, so any disagreement with the header means
    // the file is corrupt — bail rather than misparse what follows.
    let last = *offsets.last().expect("offsets has n + 1 >= 1 entries");
    if last != m {
        return Err(GraphError::Format(format!(
            "offsets/targets length mismatch: final offset {last} but header claims {m} targets"
        )));
    }

    let targets: Vec<VertexId> = read_u32_values(reader, m, "targets")?;
    CsrGraph::from_raw_parts(offsets, targets, directed)
}

/// Save a graph to a file.
pub fn save<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write(graph, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Load a graph from a file.
pub fn load<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let file = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(file);
    read(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected_simple;
    use crate::edge_list::EdgeList;

    fn sample() -> CsrGraph {
        build_undirected_simple(&EdgeList::from_pairs(vec![
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 2),
        ]))
        .unwrap()
    }

    #[test]
    fn memory_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let back = read(&mut buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn directed_flag_roundtrips() {
        let g = crate::builder::build_directed_simple(&EdgeList::from_pairs(vec![(0, 1), (2, 1)]))
            .unwrap();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let back = read(&mut buf.as_slice()).unwrap();
        assert!(back.is_directed());
        assert_eq!(g, back);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CsrGraph::empty(5, false);
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let back = read(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 5);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTAGRPH\x00........".to_vec();
        assert!(matches!(
            read(&mut buf.as_slice()),
            Err(GraphError::Format(_))
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let g = sample();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn bad_flags_rejected() {
        for magic in [MAGIC_V1, MAGIC_V2] {
            let mut buf = Vec::new();
            buf.extend_from_slice(magic);
            buf.push(9);
            buf.extend_from_slice(&[0u8; 7]);
            buf.extend_from_slice(&0u64.to_le_bytes());
            buf.extend_from_slice(&0u64.to_le_bytes());
            buf.extend_from_slice(&0u64.to_le_bytes());
            assert!(matches!(
                read(&mut buf.as_slice()),
                Err(GraphError::Format(_))
            ));
        }
    }

    #[test]
    fn nonzero_reserved_bytes_rejected() {
        let g = sample();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        for i in 9..16 {
            let mut bad = buf.clone();
            bad[i] = 1;
            match read(&mut bad.as_slice()) {
                Err(GraphError::Format(msg)) => assert!(msg.contains("reserved"), "{msg}"),
                other => panic!("expected Format error, got {other:?}"),
            }
        }
    }

    #[test]
    fn v1_files_still_load() {
        // Pre-v2 files have a packed 25-byte header and no padding.
        let g = sample();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        buf.push(g.is_directed() as u8);
        buf.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
        buf.extend_from_slice(&(g.num_arcs() as u64).to_le_bytes());
        for &o in g.offsets() {
            buf.extend_from_slice(&(o as u64).to_le_bytes());
        }
        for &t in g.targets() {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        let back = read(&mut buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn every_truncation_point_is_an_error() {
        // Cutting the stream at *any* byte — inside the magic, flags,
        // header, offsets, or targets — must yield Err, never a panic or
        // a silently short graph.
        let g = sample();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        for cut in 0..buf.len() {
            let r = read(&mut &buf[..cut]);
            assert!(r.is_err(), "prefix of {cut}/{} bytes parsed", buf.len());
        }
        assert!(read(&mut buf.as_slice()).is_ok());
    }

    #[test]
    fn flipped_header_bytes_are_errors() {
        // The 32 header bytes (magic 8, flags 1, reserved 7, n 8, m 8)
        // are fully validated: inverting any one of them must produce an
        // error — bad magic, unknown flags, nonzero reserved bytes, an
        // id-space overflow, a truncated section, or an offsets/targets
        // mismatch, depending on which byte turned.
        let g = sample();
        let mut clean = Vec::new();
        write(&g, &mut clean).unwrap();
        for i in 0..HEADER_V2 {
            let mut buf = clean.clone();
            buf[i] ^= 0xff;
            let r = read(&mut buf.as_slice());
            assert!(r.is_err(), "flipping header byte {i} parsed");
        }
    }

    #[test]
    fn flipping_any_byte_never_panics() {
        // Body corruption may or may not be detectable (a flipped target
        // id can still be in range), but it must never panic.
        let g = sample();
        let mut clean = Vec::new();
        write(&g, &mut clean).unwrap();
        for i in 0..clean.len() {
            let mut buf = clean.clone();
            buf[i] ^= 0xff;
            let _ = read(&mut buf.as_slice());
        }
    }

    #[test]
    fn huge_claimed_vertex_count_rejected_without_allocation() {
        // n = u64::MAX must fail fast on the id-space check, not size a
        // (n + 1) × 8-byte buffer from the lie.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V2);
        buf.push(0);
        buf.extend_from_slice(&[0u8; 7]);
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        match read(&mut buf.as_slice()) {
            Err(GraphError::Format(msg)) => assert!(msg.contains("id space"), "{msg}"),
            other => panic!("expected Format error, got {other:?}"),
        }
    }

    #[test]
    fn huge_claimed_arc_count_rejected_by_offset_cross_check() {
        // Valid offsets but a header claiming u64::MAX targets: the
        // final-offset cross-check fires before any target is read.
        let g = sample();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V2);
        buf.push(0);
        buf.extend_from_slice(&[0u8; 7]);
        buf.extend_from_slice(&(g.num_vertices() as u64).to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        for &o in g.offsets() {
            buf.extend_from_slice(&(o as u64).to_le_bytes());
        }
        match read(&mut buf.as_slice()) {
            Err(GraphError::Format(msg)) => assert!(msg.contains("mismatch"), "{msg}"),
            other => panic!("expected Format error, got {other:?}"),
        }
    }

    #[test]
    fn truncation_errors_name_the_section() {
        let g = sample();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        // Cut mid-offsets (header is 32 bytes, offsets span 40 more).
        match read(&mut &buf[..36]) {
            Err(GraphError::Format(msg)) => assert!(msg.contains("offsets"), "{msg}"),
            other => panic!("expected Format error, got {other:?}"),
        }
        // Cut mid-targets.
        match read(&mut &buf[..buf.len() - 2]) {
            Err(GraphError::Format(msg)) => assert!(msg.contains("targets"), "{msg}"),
            other => panic!("expected Format error, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("graphct_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = sample();
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }
}
