//! GraphCT's internal binary CSR format.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic    8 bytes  "GRAPHCT\x01"
//! flags    1 byte   bit 0 = directed
//! n        8 bytes  vertex count (u64)
//! m        8 bytes  stored-arc count (u64)
//! offsets  (n + 1) × 8 bytes (u64 each)
//! targets  m × 4 bytes (u32 each)
//! ```
//!
//! This is the `comp1.bin` of the paper's example script (§IV-B): a graph
//! or extracted component saved to disk and restored without re-parsing
//! text.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::types::VertexId;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"GRAPHCT\x01";

/// Serialize a graph to `writer`.
pub fn write<W: Write>(graph: &CsrGraph, writer: &mut W) -> Result<()> {
    writer.write_all(MAGIC)?;
    writer.write_all(&[graph.is_directed() as u8])?;
    writer.write_all(&(graph.num_vertices() as u64).to_le_bytes())?;
    writer.write_all(&(graph.num_arcs() as u64).to_le_bytes())?;
    // Buffered conversion keeps peak extra memory at one chunk.
    let mut buf = Vec::with_capacity(8 * 4096);
    for chunk in graph.offsets().chunks(4096) {
        buf.clear();
        for &o in chunk {
            buf.extend_from_slice(&(o as u64).to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    for chunk in graph.targets().chunks(8192) {
        buf.clear();
        for &t in chunk {
            buf.extend_from_slice(&t.to_le_bytes());
        }
        writer.write_all(&buf)?;
    }
    Ok(())
}

/// Deserialize a graph from `reader`.
pub fn read<R: Read>(reader: &mut R) -> Result<CsrGraph> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::Format("bad magic: not a GraphCT binary".into()));
    }
    let mut flags = [0u8; 1];
    reader.read_exact(&mut flags)?;
    if flags[0] > 1 {
        return Err(GraphError::Format(format!(
            "unknown flags byte {}",
            flags[0]
        )));
    }
    let directed = flags[0] == 1;
    let mut u64buf = [0u8; 8];
    reader.read_exact(&mut u64buf)?;
    let n = u64::from_le_bytes(u64buf) as usize;
    reader.read_exact(&mut u64buf)?;
    let m = u64::from_le_bytes(u64buf) as usize;

    let mut offsets = Vec::with_capacity(n + 1);
    let mut raw = vec![0u8; (n + 1) * 8];
    reader.read_exact(&mut raw)?;
    for chunk in raw.chunks_exact(8) {
        offsets.push(u64::from_le_bytes(chunk.try_into().unwrap()) as usize);
    }

    let mut targets = Vec::with_capacity(m);
    let mut raw = vec![0u8; m * 4];
    reader.read_exact(&mut raw)?;
    for chunk in raw.chunks_exact(4) {
        targets.push(VertexId::from_le_bytes(chunk.try_into().unwrap()));
    }

    CsrGraph::from_raw_parts(offsets, targets, directed)
}

/// Save a graph to a file.
pub fn save<P: AsRef<Path>>(graph: &CsrGraph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write(graph, &mut w)?;
    w.flush()?;
    Ok(())
}

/// Load a graph from a file.
pub fn load<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let file = std::fs::File::open(path)?;
    let mut r = std::io::BufReader::new(file);
    read(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_undirected_simple;
    use crate::edge_list::EdgeList;

    fn sample() -> CsrGraph {
        build_undirected_simple(&EdgeList::from_pairs(vec![
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (0, 2),
        ]))
        .unwrap()
    }

    #[test]
    fn memory_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let back = read(&mut buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn directed_flag_roundtrips() {
        let g = crate::builder::build_directed_simple(&EdgeList::from_pairs(vec![(0, 1), (2, 1)]))
            .unwrap();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let back = read(&mut buf.as_slice()).unwrap();
        assert!(back.is_directed());
        assert_eq!(g, back);
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = CsrGraph::empty(5, false);
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        let back = read(&mut buf.as_slice()).unwrap();
        assert_eq!(back.num_vertices(), 5);
        assert_eq!(back.num_edges(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOTAGRPH\x00........".to_vec();
        assert!(matches!(
            read(&mut buf.as_slice()),
            Err(GraphError::Format(_))
        ));
    }

    #[test]
    fn truncated_input_rejected() {
        let g = sample();
        let mut buf = Vec::new();
        write(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn bad_flags_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.push(9);
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read(&mut buf.as_slice()),
            Err(GraphError::Format(_))
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("graphct_binary_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.bin");
        let g = sample();
        save(&g, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(g, back);
        std::fs::remove_file(&path).ok();
    }
}
