//! Graph file formats.
//!
//! * [`dimacs`] — the DIMACS text format GraphCT ingests ("A large number
//!   of graph datasets consist of plain text files. One simple example is
//!   a DIMACS formatted graph", §IV-C), parsed in parallel over chunks.
//! * [`binary`] — GraphCT's "internal binary compressed sparse row
//!   format" used by the scripting interface's `save`/`extract … =>
//!   comp1.bin` commands (§IV-B).
//! * [`edges_text`] — a minimal `src dst` edge-per-line text format.
//! * [`mmap`] — a zero-copy memory-mapped view over the format-v2
//!   binary layout, validated on open.

pub mod binary;
pub mod dimacs;
pub mod edges_text;
pub mod mmap;
