//! Zero-copy memory-mapped view over a format-v2 binary graph file.
//!
//! `MmapCsr` maps the file produced by [`super::binary::write`] and
//! serves offsets and targets straight out of the page cache: opening a
//! scale-22 graph is O(1) allocation (the mapping itself), the kernel
//! pages adjacency in on first touch, and clean pages are reclaimable
//! under memory pressure — the property that moves the practical ceiling
//! from "CSR fits twice in RAM" to "CSR fits on disk".
//!
//! Validation on open mirrors [`super::binary::read`] exactly: magic,
//! flags, reserved padding, id-space bound on `n`, the offsets
//! monotonicity/cross-check, and the targets range scan all run before
//! the first kernel touches the view, so traversals can trust the data
//! without per-access checks.  The one addition is an *exact* file-size
//! check — a streaming reader discovers truncation by hitting EOF, a
//! mapping must refuse it up front.
//!
//! The v2 header is 32 bytes, so within the page-aligned mapping the
//! offsets section is 8-byte aligned and the targets section 4-byte
//! aligned; both are decoded with `from_le_bytes` on fixed-width
//! chunks, which compiles to plain loads on little-endian hosts.

use crate::csr::CsrGraph;
use crate::error::{GraphError, Result};
use crate::io::binary::{HEADER_V2, MAGIC_V1, MAGIC_V2, MAX_VERTICES};
use crate::types::VertexId;
use crate::view::GraphView;
use rayon::prelude::*;
use std::path::Path;

#[cfg(unix)]
mod sys {
    //! A minimal read-only `mmap` wrapper over the platform C library
    //! (declared directly — this crate deliberately has no external
    //! dependencies beyond the vendored workspace shims).

    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// An owned read-only mapping of an entire file.
    pub struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is read-only for its whole lifetime.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl Mmap {
        pub fn map(file: &File, len: usize) -> io::Result<Mmap> {
            if len == 0 {
                // mmap(2) rejects zero-length mappings; a dangling
                // non-null pointer is the canonical empty slice.
                return Ok(Mmap {
                    ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                    len: 0,
                });
            }
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap {
                ptr: ptr as *const u8,
                len,
            })
        }

        #[inline]
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: the mapping covers `len` readable bytes until drop.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len > 0 {
                unsafe { munmap(self.ptr as *mut c_void, self.len) };
            }
        }
    }
}

/// The bytes backing an [`MmapCsr`]: a real mapping on unix, a heap
/// read elsewhere (same API, same validation, no zero-copy win).
enum Backing {
    #[cfg(unix)]
    Map(sys::Mmap),
    #[allow(dead_code)]
    Heap(Vec<u8>),
}

impl Backing {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            Backing::Map(m) => m.bytes(),
            Backing::Heap(v) => v,
        }
    }
}

/// A read-only graph served directly from a mapped format-v2 file.
pub struct MmapCsr {
    backing: Backing,
    n: usize,
    m: usize,
    directed: bool,
    /// Byte position of the targets section (`HEADER_V2 + 8(n + 1)`).
    targets_at: usize,
}

#[inline]
fn le_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

impl MmapCsr {
    /// Map and validate `path`.
    ///
    /// Every corruption a streaming [`super::binary::read`] catches is
    /// caught here too — plus size mismatches in either direction —
    /// and always as a clean [`GraphError`], never a panic.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<MmapCsr> {
        let file = std::fs::File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| GraphError::Format("file length overflows usize".into()))?;
        #[cfg(unix)]
        let backing = Backing::Map(sys::Mmap::map(&file, len)?);
        #[cfg(not(unix))]
        let backing = {
            use std::io::Read;
            let mut buf = Vec::new();
            std::io::BufReader::new(file).read_to_end(&mut buf)?;
            Backing::Heap(buf)
        };
        Self::from_backing(backing)
    }

    fn from_backing(backing: Backing) -> Result<MmapCsr> {
        let bytes = backing.bytes();
        let len = bytes.len();
        // Header checks, in the same order (and with the same error
        // text) as the streaming reader.
        if len < 8 {
            return Err(GraphError::Format("truncated magic section".into()));
        }
        if &bytes[..8] == MAGIC_V1 {
            return Err(GraphError::Format(
                "format v1 file: the mmap backend needs the aligned v2 layout \
                 (rewrite it with `graphct convert`)"
                    .into(),
            ));
        }
        if &bytes[..8] != MAGIC_V2 {
            return Err(GraphError::Format("bad magic: not a GraphCT binary".into()));
        }
        if len < 9 {
            return Err(GraphError::Format("truncated flags section".into()));
        }
        let flags = bytes[8];
        if flags > 1 {
            return Err(GraphError::Format(format!("unknown flags byte {flags}")));
        }
        if len < HEADER_V2 {
            return Err(GraphError::Format("truncated header section".into()));
        }
        if bytes[9..16] != [0u8; 7] {
            return Err(GraphError::Format(
                "reserved header bytes must be zero".into(),
            ));
        }
        let n64 = le_u64(bytes, 16);
        if n64 >= MAX_VERTICES {
            return Err(GraphError::Format(format!(
                "vertex count {n64} exceeds the u32 id space"
            )));
        }
        let m64 = le_u64(bytes, 24);
        let n = usize::try_from(n64)
            .map_err(|_| GraphError::Format(format!("vertex count {n64} overflows usize")))?;
        let m = usize::try_from(m64)
            .map_err(|_| GraphError::Format(format!("arc count {m64} overflows usize")))?;
        // Size cross-check in checked u64 so a lying header cannot
        // overflow it (m is unbounded until this point).
        let offsets_bytes = 8u64 * (n64 + 1);
        let expected = m64
            .checked_mul(4)
            .and_then(|t| t.checked_add(HEADER_V2 as u64 + offsets_bytes))
            .ok_or_else(|| {
                GraphError::Format(format!("arc count {m64} overflows the file size"))
            })?;
        let len64 = len as u64;
        if len64 < HEADER_V2 as u64 + offsets_bytes {
            return Err(GraphError::Format("truncated offsets section".into()));
        }
        if len64 < expected {
            return Err(GraphError::Format("truncated targets section".into()));
        }
        if len64 > expected {
            return Err(GraphError::Format(format!(
                "file is {} bytes but the header describes {expected}",
                len64
            )));
        }
        let view = MmapCsr {
            backing,
            n,
            m,
            directed: flags == 1,
            targets_at: HEADER_V2 + (offsets_bytes as usize),
        };
        // Offsets: monotone, start at 0, final entry equals the header's
        // claimed arc count (the same cross-check the reader applies).
        if view.offset_raw(0) != 0 {
            return Err(GraphError::Format("offsets must start at zero".into()));
        }
        let last = view.offset_raw(n);
        if last != m64 {
            return Err(GraphError::Format(format!(
                "offsets/targets length mismatch: final offset {last} but header claims {m64} targets"
            )));
        }
        if (0..n)
            .into_par_iter()
            .any(|i| view.offset_raw(i) > view.offset_raw(i + 1))
        {
            return Err(GraphError::Format("offsets must be non-decreasing".into()));
        }
        // Targets: every id in range, exactly like from_raw_parts.
        if let Some(bad) = (0..m)
            .into_par_iter()
            .map(|i| view.target(i))
            .find_any(|&t| (t as usize) >= n)
        {
            return Err(GraphError::VertexOutOfRange {
                vertex: bad as u64,
                num_vertices: n as u64,
            });
        }
        Ok(view)
    }

    #[inline]
    fn offset_raw(&self, i: usize) -> u64 {
        le_u64(self.backing.bytes(), HEADER_V2 + 8 * i)
    }

    #[inline]
    fn offset(&self, i: usize) -> usize {
        // Validated against m (itself a usize) on open.
        self.offset_raw(i) as usize
    }

    #[inline]
    fn target(&self, i: usize) -> VertexId {
        let at = self.targets_at + 4 * i;
        u32::from_le_bytes(self.backing.bytes()[at..at + 4].try_into().unwrap())
    }

    /// The file's size in bytes (header + sections).
    pub fn file_bytes(&self) -> usize {
        self.backing.bytes().len()
    }

    /// Page residency of the backing bytes as `(resident, mapped)`,
    /// probed with `mincore(2)`.  Falls back to fully-resident where
    /// the probe is unavailable (heap backing is resident by
    /// definition), so the pair is always usable as a ratio.
    pub fn residency(&self) -> (usize, usize) {
        let bytes = self.backing.bytes();
        let resident = crate::memory::MemoryProbe::resident_bytes(bytes).unwrap_or(bytes.len());
        (resident, bytes.len())
    }

    /// Sample residency into the `graphct_mmap_resident_bytes` /
    /// `graphct_mmap_mapped_bytes` gauges (call before and after a
    /// traversal to see what the kernel paged in); returns
    /// `(resident, mapped)`.
    pub fn sample_residency(&self) -> (usize, usize) {
        crate::memory::MemoryProbe::sample_mapping(self.backing.bytes())
    }

    /// Copy the mapped graph into a plain heap [`CsrGraph`].
    pub fn to_csr_graph(&self) -> CsrGraph {
        self.to_csr()
    }
}

/// Iterator over one vertex's targets, decoded from the mapped bytes.
pub struct MmapNeighbors<'a> {
    chunks: std::slice::ChunksExact<'a, u8>,
}

impl Iterator for MmapNeighbors<'_> {
    type Item = VertexId;

    #[inline]
    fn next(&mut self) -> Option<VertexId> {
        self.chunks
            .next()
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        self.chunks.size_hint()
    }
}

impl ExactSizeIterator for MmapNeighbors<'_> {}

impl GraphView for MmapCsr {
    type Neighbors<'a> = MmapNeighbors<'a>;

    #[inline]
    fn num_vertices(&self) -> usize {
        self.n
    }

    #[inline]
    fn num_arcs(&self) -> usize {
        self.m
    }

    #[inline]
    fn is_directed(&self) -> bool {
        self.directed
    }

    #[inline]
    fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offset(v + 1) - self.offset(v)
    }

    #[inline]
    fn neighbors_iter(&self, v: VertexId) -> MmapNeighbors<'_> {
        let v = v as usize;
        let start = self.targets_at + 4 * self.offset(v);
        let end = self.targets_at + 4 * self.offset(v + 1);
        MmapNeighbors {
            chunks: self.backing.bytes()[start..end].chunks_exact(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_directed_simple, build_undirected_simple};
    use crate::edge_list::EdgeList;

    fn save_sample(name: &str, directed: bool) -> (std::path::PathBuf, CsrGraph) {
        let el = EdgeList::from_pairs(vec![(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let g = if directed {
            build_directed_simple(&el).unwrap()
        } else {
            build_undirected_simple(&el).unwrap()
        };
        let dir = std::env::temp_dir().join("graphct_mmap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        crate::io::binary::save(&g, &path).unwrap();
        (path, g)
    }

    #[test]
    fn mapped_view_matches_heap_graph() {
        for (name, directed) in [("u.bin", false), ("d.bin", true)] {
            let (path, g) = save_sample(name, directed);
            let view = MmapCsr::open(&path).unwrap();
            assert_eq!(view.num_vertices(), g.num_vertices());
            assert_eq!(view.num_arcs(), g.num_arcs());
            assert_eq!(view.is_directed(), g.is_directed());
            for v in 0..g.num_vertices() as VertexId {
                assert_eq!(view.degree(v), g.degree(v));
                let nbrs: Vec<VertexId> = view.neighbors_iter(v).collect();
                assert_eq!(nbrs, g.neighbors(v));
            }
            assert_eq!(view.to_csr_graph(), g);
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn v1_file_gets_a_version_hint() {
        let (path, g) = save_sample("v1.bin", false);
        let mut bytes = std::fs::read(&path).unwrap();
        // Rewrite as v1: swap the magic and drop the padding.
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC_V1);
        v1.push(bytes[8]);
        v1.extend_from_slice(&bytes[16..]);
        bytes = v1;
        std::fs::write(&path, &bytes).unwrap();
        let _ = g;
        match MmapCsr::open(&path) {
            Err(GraphError::Format(msg)) => assert!(msg.contains("v2"), "{msg}"),
            other => panic!("expected Format error, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn residency_is_bounded_by_mapping_and_feeds_gauges() {
        let (path, _) = save_sample("resid.bin", false);
        let view = MmapCsr::open(&path).unwrap();
        let (resident, mapped) = view.residency();
        assert_eq!(mapped, view.file_bytes());
        assert!(resident <= mapped, "resident {resident} > mapped {mapped}");

        let session = graphct_trace::Session::start(std::sync::Arc::new(graphct_trace::NullSink));
        // Touch everything, then sample: the whole mapping is resident.
        let _ = view.to_csr_graph();
        let (resident, mapped) = view.sample_residency();
        assert_eq!(resident, mapped, "fully touched mapping must be resident");
        assert_eq!(crate::memory::MMAP_RESIDENT_BYTES.value(), resident as u64);
        assert_eq!(crate::memory::MMAP_MAPPED_BYTES.value(), mapped as u64);
        session.finish();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_bytes_rejected() {
        let (path, _) = save_sample("trail.bin", false);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0);
        std::fs::write(&path, &bytes).unwrap();
        assert!(MmapCsr::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
