//! Plain `src dst` edge-per-line text format.
//!
//! Lines starting with `#` or `%` are comments; blank lines are skipped.
//! Vertices are 0-indexed (unlike DIMACS).  This is the lingua franca of
//! published social-network snapshots (SNAP, KONECT, the Kwak et al.
//! follower-graph release the paper analyzes).

use crate::edge_list::EdgeList;
use crate::error::{GraphError, Result};
use crate::types::VertexId;
use rayon::prelude::*;
use std::io::Write;
use std::path::Path;

/// Parse edge-list text already in memory (parallel over line chunks).
pub fn parse_str(text: &str) -> Result<EdgeList> {
    let lines: Vec<(usize, &str)> = text.lines().enumerate().collect();
    let parsed: std::result::Result<Vec<Vec<(VertexId, VertexId)>>, GraphError> = lines
        .par_chunks(4096)
        .map(|chunk| {
            let mut local = Vec::with_capacity(chunk.len());
            for &(i, raw) in chunk {
                let line = raw.trim();
                if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
                    continue;
                }
                let mut it = line.split_whitespace();
                let src: VertexId =
                    it.next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| GraphError::Parse {
                            line: i + 1,
                            message: "missing/invalid source vertex".into(),
                        })?;
                let dst: VertexId =
                    it.next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| GraphError::Parse {
                            line: i + 1,
                            message: "missing/invalid target vertex".into(),
                        })?;
                local.push((src, dst));
            }
            Ok(local)
        })
        .collect();
    let mut edges = EdgeList::new();
    for chunk in parsed? {
        for (s, t) in chunk {
            edges.push(s, t);
        }
    }
    Ok(edges)
}

/// Read and parse an edge-list file.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<EdgeList> {
    let text = std::fs::read_to_string(path)?;
    parse_str(&text)
}

/// Write an edge list as text.
pub fn write_file<P: AsRef<Path>>(path: P, edges: &EdgeList) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "# graphct-rs edge list: {} edges", edges.len())?;
    for &(s, t) in edges.as_slice() {
        writeln!(w, "{s} {t}")?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_with_comments_and_blanks() {
        let e = parse_str("# header\n0 1\n\n% other comment\n2 3 ignored-extra\n").unwrap();
        assert_eq!(e.as_slice(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn rejects_garbage() {
        let err = parse_str("0 1\nfoo bar\n").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }));
    }

    #[test]
    fn rejects_missing_target() {
        assert!(parse_str("5\n").is_err());
    }

    #[test]
    fn empty_text_is_empty_list() {
        assert!(parse_str("").unwrap().is_empty());
        assert!(parse_str("# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("graphct_edges_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("edges.txt");
        let edges = EdgeList::from_pairs(vec![(5, 1), (0, 7)]);
        write_file(&path, &edges).unwrap();
        assert_eq!(read_file(&path).unwrap(), edges);
        std::fs::remove_file(&path).ok();
    }
}
