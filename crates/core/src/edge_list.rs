//! An edge list: the universal ingest format.
//!
//! Generators and the Twitter pipeline both hand edges to the
//! [`GraphBuilder`](crate::GraphBuilder) as an [`EdgeList`]; the DIMACS
//! and edge-text parsers produce one too.

use crate::types::VertexId;
use rayon::prelude::*;

/// A growable list of directed `(source, target)` pairs.
///
/// The list does not deduplicate or validate; those policies belong to the
/// [`GraphBuilder`](crate::GraphBuilder).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeList {
    edges: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    /// An empty list.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty list with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            edges: Vec::with_capacity(cap),
        }
    }

    /// Wrap an existing vector of pairs.
    pub fn from_pairs(edges: Vec<(VertexId, VertexId)>) -> Self {
        Self { edges }
    }

    /// Append one edge.
    #[inline]
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        self.edges.push((src, dst));
    }

    /// Append all edges from another list.
    pub fn extend_from(&mut self, other: &EdgeList) {
        self.edges.extend_from_slice(&other.edges);
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when the list holds no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Borrow the raw pairs.
    pub fn as_slice(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Consume into the raw pairs.
    pub fn into_pairs(self) -> Vec<(VertexId, VertexId)> {
        self.edges
    }

    /// The smallest vertex count that makes every endpoint valid
    /// (`max endpoint + 1`), computed in parallel. Zero for an empty list.
    pub fn min_num_vertices(&self) -> usize {
        self.edges
            .par_iter()
            .map(|&(s, t)| s.max(t))
            .max()
            .map_or(0, |m| m as usize + 1)
    }

    /// Number of self-loop edges.
    pub fn count_self_loops(&self) -> usize {
        self.edges.par_iter().filter(|&&(s, t)| s == t).count()
    }
}

impl FromIterator<(VertexId, VertexId)> for EdgeList {
    fn from_iter<I: IntoIterator<Item = (VertexId, VertexId)>>(iter: I) -> Self {
        Self {
            edges: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a EdgeList {
    type Item = &'a (VertexId, VertexId);
    type IntoIter = std::slice::Iter<'a, (VertexId, VertexId)>;
    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut el = EdgeList::new();
        assert!(el.is_empty());
        el.push(0, 1);
        el.push(1, 2);
        assert_eq!(el.len(), 2);
        assert_eq!(el.as_slice(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn min_num_vertices() {
        assert_eq!(EdgeList::new().min_num_vertices(), 0);
        let el = EdgeList::from_pairs(vec![(0, 5), (2, 3)]);
        assert_eq!(el.min_num_vertices(), 6);
    }

    #[test]
    fn self_loop_count() {
        let el = EdgeList::from_pairs(vec![(0, 0), (1, 2), (3, 3)]);
        assert_eq!(el.count_self_loops(), 2);
    }

    #[test]
    fn from_iterator_and_extend() {
        let a: EdgeList = [(0u32, 1u32), (1, 0)].into_iter().collect();
        let mut b = EdgeList::with_capacity(4);
        b.extend_from(&a);
        b.extend_from(&a);
        assert_eq!(b.len(), 4);
        assert_eq!((&b).into_iter().count(), 4);
        assert_eq!(b.clone().into_pairs().len(), 4);
    }
}
