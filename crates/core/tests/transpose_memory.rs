//! Peak-memory regression guard for `CsrGraph::transpose`.
//!
//! The transpose used to build a full `Vec<AtomicU32>` shadow of the
//! targets array before copying it into the output, doubling the
//! kernel's peak footprint on exactly the graphs where transpose
//! matters (pull-direction BFS over Twitter-scale followership).  The
//! scatter now writes straight into the output buffer, so the extra
//! high-water mark must stay within one targets-sized buffer plus
//! small per-vertex bookkeeping.

use graphct_core::CsrGraph;
use graphct_trace::CountingAllocator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Deterministic directed graph with `n` vertices of out-degree `deg`.
fn dense_directed(n: u32, deg: u32) -> CsrGraph {
    let mut offsets = Vec::with_capacity(n as usize + 1);
    let mut targets = Vec::with_capacity((n * deg) as usize);
    let mut state = 0x9e37_79b9_u32;
    offsets.push(0);
    for _ in 0..n {
        for _ in 0..deg {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            targets.push(state % n);
        }
        offsets.push(targets.len());
    }
    CsrGraph::from_raw_parts(offsets, targets, true).unwrap()
}

#[test]
fn transpose_peak_is_one_targets_buffer_not_two() {
    let n = 2048u32;
    let deg = 64u32;
    let g = dense_directed(n, deg);
    let m = g.num_arcs();
    let targets_bytes = m * std::mem::size_of::<u32>();

    // Warm up whatever lazy global state (thread pool, etc.) the
    // parallel runtime allocates on first use, so the measured window
    // contains only transpose's own allocations.
    let warm = g.transpose();
    assert_eq!(warm.num_arcs(), m);
    drop(warm);

    let live_before = graphct_trace::alloc::live_bytes();
    graphct_trace::alloc::reset_peak();
    let t = g.transpose();
    let extra_peak = graphct_trace::alloc::peak_bytes().saturating_sub(live_before);

    // Budget: the output targets buffer itself, plus O(n)-sized degree
    // counts / offsets / cursors (a few words per vertex), plus slack
    // for the parallel runtime.  The old shadow-buffer implementation
    // peaked at ~2x targets_bytes and must fail this bound.
    let budget = targets_bytes as u64 + 8 * 8 * (n as u64 + 1) + 128 * 1024;
    assert!(
        extra_peak < budget,
        "transpose peaked {extra_peak} extra bytes; budget {budget} \
         (targets buffer is {targets_bytes} bytes)"
    );
    // And well under the old two-buffer floor.
    assert!(
        extra_peak < 2 * targets_bytes as u64,
        "transpose peak {extra_peak} suggests a full shadow copy of targets ({targets_bytes} bytes) is back"
    );

    // Sanity: the result is still a real transpose.
    assert_eq!(t.num_arcs(), m);
    let back = t.transpose();
    for v in 0..n {
        let mut expect: Vec<u32> = g.neighbors(v).to_vec();
        expect.sort_unstable();
        assert_eq!(back.neighbors(v), expect.as_slice());
    }
}
