//! Top-k set comparison metrics.
//!
//! Fig. 5 of the paper reports "the percent of top k actors present in
//! both exact and approximate BC rankings", i.e. the overlap of the two
//! top-k sets; the complementary normalized set Hamming distance is the
//! metric named in §III-D.

use crate::rank::top_fraction_indices;
use std::collections::HashSet;

/// Overlap of two top-k index sets: `|A ∩ B| / max(|A|, |B|)`.
/// 1.0 when both sets are empty.
pub fn set_overlap(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: HashSet<usize> = a.iter().copied().collect();
    let inter = b.iter().filter(|x| sa.contains(x)).count();
    inter as f64 / sa.len().max(b.len()) as f64
}

/// Normalized set Hamming distance between two equal-size top-k sets:
/// `|A Δ B| / (|A| + |B|)` — 0 for identical sets, 1 for disjoint.
pub fn normalized_set_hamming(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let sa: HashSet<usize> = a.iter().copied().collect();
    let sb: HashSet<usize> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count();
    let sym_diff = sa.len() + sb.len() - 2 * inter;
    sym_diff as f64 / (sa.len() + sb.len()) as f64
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` of two index sets.
/// 1.0 when both are empty.
pub fn jaccard(a: &[usize], b: &[usize]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let sa: HashSet<usize> = a.iter().copied().collect();
    let sb: HashSet<usize> = b.iter().copied().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    inter as f64 / union as f64
}

/// Fig. 5's measurement in one call: the fraction of the top `fraction`
/// of `exact` scores that also appear in the top `fraction` of `approx`
/// scores.
///
/// # Examples
///
/// ```
/// use graphct_metrics::top_k_overlap;
///
/// let exact  = [9.0, 7.0, 5.0, 1.0, 0.0];
/// let approx = [8.5, 7.7, 0.5, 4.0, 0.1]; // top-2 set unchanged
/// assert_eq!(top_k_overlap(&exact, &approx, 0.4), 1.0);
/// ```
pub fn top_k_overlap(exact: &[f64], approx: &[f64], fraction: f64) -> f64 {
    assert_eq!(
        exact.len(),
        approx.len(),
        "score vectors must cover the same vertices"
    );
    let a = top_fraction_indices(exact, fraction);
    let b = top_fraction_indices(approx, fraction);
    set_overlap(&a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sets() {
        assert_eq!(set_overlap(&[1, 2, 3], &[3, 2, 1]), 1.0);
        assert_eq!(normalized_set_hamming(&[1, 2], &[2, 1]), 0.0);
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
    }

    #[test]
    fn disjoint_sets() {
        assert_eq!(set_overlap(&[1, 2], &[3, 4]), 0.0);
        assert_eq!(normalized_set_hamming(&[1, 2], &[3, 4]), 1.0);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        assert!((set_overlap(&[1, 2, 3, 4], &[3, 4, 5, 6]) - 0.5).abs() < 1e-12);
        assert!((normalized_set_hamming(&[1, 2, 3, 4], &[3, 4, 5, 6]) - 0.5).abs() < 1e-12);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_sets() {
        assert_eq!(set_overlap(&[], &[]), 1.0);
        assert_eq!(normalized_set_hamming(&[], &[]), 0.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(set_overlap(&[], &[1]), 0.0);
    }

    #[test]
    fn top_k_overlap_on_scores() {
        let exact = [10.0, 9.0, 8.0, 1.0, 0.5, 0.1, 0.0, 0.0, 0.0, 0.0];
        // approx swaps ranks inside the top set and outside it.
        let approx = [9.0, 10.0, 7.5, 0.4, 1.2, 0.2, 0.0, 0.0, 0.0, 0.0];
        assert_eq!(top_k_overlap(&exact, &approx, 0.3), 1.0);
        // Top 10% (1 element): exact {0}, approx {1} → 0 overlap.
        assert_eq!(top_k_overlap(&exact, &approx, 0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "same vertices")]
    fn mismatched_lengths_panic() {
        top_k_overlap(&[1.0], &[1.0, 2.0], 0.5);
    }
}
