//! Score rankings.

use rayon::prelude::*;

/// Indices of the `k` largest scores, descending; ties broken toward the
/// smaller index so rankings are deterministic.
pub fn top_k_indices(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    let k = k.min(scores.len());
    if k == 0 {
        return Vec::new();
    }
    // Full parallel sort: simple, deterministic, and fast enough for the
    // n ≤ 10^7 vertex counts of the experiments.
    idx.par_sort_unstable_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// Indices of the top `fraction` (0..=1) of scores — the "top N % actors"
/// selection of §III-D.  At least one index is returned for a non-empty
/// input with positive fraction.
pub fn top_fraction_indices(scores: &[f64], fraction: f64) -> Vec<usize> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must lie in [0, 1]"
    );
    if scores.is_empty() || fraction == 0.0 {
        return Vec::new();
    }
    let k = ((scores.len() as f64 * fraction).round() as usize).clamp(1, scores.len());
    top_k_indices(scores, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_descending() {
        assert_eq!(top_k_indices(&[1.0, 5.0, 3.0], 3), vec![1, 2, 0]);
        assert_eq!(top_k_indices(&[1.0, 5.0, 3.0], 2), vec![1, 2]);
    }

    #[test]
    fn ties_break_to_smaller_index() {
        assert_eq!(top_k_indices(&[2.0, 2.0, 2.0], 2), vec![0, 1]);
    }

    #[test]
    fn k_larger_than_input() {
        assert_eq!(top_k_indices(&[4.0], 10), vec![0]);
        assert!(top_k_indices(&[], 3).is_empty());
        assert!(top_k_indices(&[1.0], 0).is_empty());
    }

    #[test]
    fn fraction_selection() {
        let scores = [0.0, 9.0, 5.0, 7.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0];
        assert_eq!(top_fraction_indices(&scores, 0.2), vec![1, 9]);
        // Tiny fraction still returns one.
        assert_eq!(top_fraction_indices(&scores, 0.01), vec![1]);
        assert!(top_fraction_indices(&scores, 0.0).is_empty());
        assert_eq!(top_fraction_indices(&scores, 1.0).len(), 10);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        top_fraction_indices(&[1.0], 2.0);
    }
}
