//! Power-law (Pareto) fitting for degree distributions.
//!
//! §III-C: "So called scale-free networks exhibit power-law
//! distributions in their degree distributions".  We fit
//! `P(X = x) ∝ x^(−alpha)` for `x ≥ x_min` with the discrete
//! maximum-likelihood estimator of Clauset–Shalizi–Newman (the
//! `0.5`-shifted continuous approximation), and report a
//! Kolmogorov–Smirnov distance between the empirical and fitted CCDFs
//! as a goodness-of-fit indicator.

use rayon::prelude::*;

/// Result of [`fit_power_law`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Fitted exponent alpha.
    pub alpha: f64,
    /// The x_min used for the fit.
    pub x_min: usize,
    /// Number of samples ≥ x_min.
    pub tail_samples: usize,
    /// Kolmogorov–Smirnov distance between empirical and fitted CCDF
    /// over the tail.
    pub ks_distance: f64,
}

/// Fit a discrete power law to positive integer observations (e.g. a
/// degree sequence), considering only values `>= x_min`.
///
/// Returns `None` when fewer than 2 tail samples exist or `x_min == 0`.
pub fn fit_power_law(values: &[usize], x_min: usize) -> Option<PowerLawFit> {
    if x_min == 0 {
        return None;
    }
    let tail: Vec<usize> = values.par_iter().copied().filter(|&v| v >= x_min).collect();
    let n = tail.len();
    if n < 2 {
        return None;
    }
    let shift = x_min as f64 - 0.5;
    let log_sum: f64 = tail.par_iter().map(|&v| (v as f64 / shift).ln()).sum();
    let alpha = 1.0 + n as f64 / log_sum;

    // KS distance between empirical CCDF and the fitted Pareto CCDF
    // P(X >= x) = (x / x_min)^(1 - alpha), evaluated at observed points.
    let mut sorted = tail.clone();
    sorted.par_sort_unstable();
    let mut ks: f64 = 0.0;
    let mut i = 0usize;
    while i < n {
        let x = sorted[i];
        // rank of first occurrence → empirical P(X >= x) = (n - i) / n
        let empirical = (n - i) as f64 / n as f64;
        let model = (x as f64 / x_min as f64).powf(1.0 - alpha);
        ks = ks.max((empirical - model).abs());
        let mut j = i;
        while j < n && sorted[j] == x {
            j += 1;
        }
        i = j;
    }
    Some(PowerLawFit {
        alpha,
        x_min,
        tail_samples: n,
        ks_distance: ks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sample a discrete power law by inverse-transform on the continuous
    /// approximation.
    fn synthetic_power_law(alpha: f64, x_min: usize, n: usize, seed: u64) -> Vec<usize> {
        let mut out = Vec::with_capacity(n);
        let mut state = seed.max(1);
        for _ in 0..n {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let x = (x_min as f64 - 0.5) * (1.0 - u).powf(-1.0 / (alpha - 1.0)) + 0.5;
            out.push(x as usize);
        }
        out
    }

    #[test]
    fn recovers_known_exponent() {
        // The 0.5-shifted continuous approximation is accurate for
        // x_min ≳ 5 (Clauset–Shalizi–Newman §3.5); at x_min = 1 it
        // carries a known ~0.15 bias, so the test fits the tail.
        for &alpha in &[2.0f64, 2.5, 3.0] {
            let samples = synthetic_power_law(alpha, 5, 50_000, 42);
            let fit = fit_power_law(&samples, 5).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.1,
                "alpha {alpha}: fitted {}",
                fit.alpha
            );
            assert!(fit.ks_distance < 0.05, "poor fit: ks={}", fit.ks_distance);
        }
    }

    #[test]
    fn uniform_data_fits_badly() {
        let uniform: Vec<usize> = (1..=1000).collect();
        let fit = fit_power_law(&uniform, 1).unwrap();
        let pl = fit_power_law(&synthetic_power_law(2.5, 1, 1000, 7), 1).unwrap();
        assert!(
            fit.ks_distance > pl.ks_distance,
            "uniform ks {} should exceed power-law ks {}",
            fit.ks_distance,
            pl.ks_distance
        );
    }

    #[test]
    fn x_min_filters_tail() {
        let samples = vec![1, 1, 1, 5, 10, 20, 40];
        let fit = fit_power_law(&samples, 5).unwrap();
        assert_eq!(fit.tail_samples, 4);
        assert_eq!(fit.x_min, 5);
        assert!(fit.alpha > 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(fit_power_law(&[], 1).is_none());
        assert!(fit_power_law(&[5], 1).is_none());
        assert!(fit_power_law(&[1, 2, 3], 0).is_none());
        assert!(fit_power_law(&[1, 1], 5).is_none());
    }
}
