//! Kendall rank correlation.

/// Kendall's tau-b between two equal-length score vectors, comparing how
/// consistently they order the same items.  Handles ties via the tau-b
/// normalization.  Returns 0 when either vector is constant.
///
/// O(n²) pair enumeration — intended for comparing rankings over the
/// top slices of score vectors, not whole multi-million-vertex graphs.
///
/// # Examples
///
/// ```
/// use graphct_metrics::kendall_tau;
///
/// assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
/// assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]), -1.0);
/// ```
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must have equal length");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 && db == 0.0 {
                // tied in both: contributes to neither normalizer
            } else if da == 0.0 {
                ties_a += 1;
            } else if db == 0.0 {
                ties_b += 1;
            } else if (da > 0.0) == (db > 0.0) {
                concordant += 1;
            } else {
                discordant += 1;
            }
        }
    }
    let denom = (((concordant + discordant + ties_a) as f64)
        * ((concordant + discordant + ties_b) as f64))
        .sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (concordant - discordant) as f64 / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_order_is_one() {
        assert!((kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_order_is_minus_one() {
        assert!((kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_partial_agreement() {
        // Classic example: one swapped pair among 4 → tau = (5-1)/6 = 2/3.
        let tau = kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 4.0, 3.0]);
        assert!((tau - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn constant_vector_is_zero() {
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(kendall_tau(&[], &[]), 0.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn ties_handled_symmetrically() {
        let tau_ab = kendall_tau(&[1.0, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        let tau_ba = kendall_tau(&[1.0, 2.0, 3.0], &[1.0, 1.0, 2.0]);
        assert!((tau_ab - tau_ba).abs() < 1e-12);
        assert!(tau_ab > 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        kendall_tau(&[1.0], &[1.0, 2.0]);
    }
}
