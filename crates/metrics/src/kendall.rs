//! Kendall rank correlation.

/// Kendall's tau-b between two equal-length score vectors, comparing how
/// consistently they order the same items.  Handles ties via the tau-b
/// normalization.  Returns 0 when either vector is constant.
///
/// O(n²) pair enumeration — intended for comparing rankings over the
/// top slices of score vectors, not whole multi-million-vertex graphs.
///
/// # Examples
///
/// ```
/// use graphct_metrics::kendall_tau;
///
/// assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]), 1.0);
/// assert_eq!(kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]), -1.0);
/// ```
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must have equal length");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    // Textbook tau-b: tau = (C - D) / sqrt((n0 - T_a)(n0 - T_b)) where
    // n0 = n(n-1)/2 and T_a / T_b count ALL pairs tied in a / in b —
    // a pair tied in both vectors contributes to both totals.
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    let mut ties_a = 0i64;
    let mut ties_b = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            if da == 0.0 {
                ties_a += 1;
            }
            if db == 0.0 {
                ties_b += 1;
            }
            if da != 0.0 && db != 0.0 {
                if (da > 0.0) == (db > 0.0) {
                    concordant += 1;
                } else {
                    discordant += 1;
                }
            }
        }
    }
    let n0 = (n as i64) * (n as i64 - 1) / 2;
    let denom = (((n0 - ties_a) as f64) * ((n0 - ties_b) as f64)).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        (concordant - discordant) as f64 / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_order_is_one() {
        assert!((kendall_tau(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_order_is_minus_one() {
        assert!((kendall_tau(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn known_partial_agreement() {
        // Classic example: one swapped pair among 4 → tau = (5-1)/6 = 2/3.
        let tau = kendall_tau(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.0, 4.0, 3.0]);
        assert!((tau - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn constant_vector_is_zero() {
        assert_eq!(kendall_tau(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(kendall_tau(&[], &[]), 0.0);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn ties_handled_symmetrically() {
        let tau_ab = kendall_tau(&[1.0, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        let tau_ba = kendall_tau(&[1.0, 2.0, 3.0], &[1.0, 1.0, 2.0]);
        assert!((tau_ab - tau_ba).abs() < 1e-12);
        assert!(tau_ab > 0.0);
    }

    #[test]
    fn joint_ties_give_perfect_agreement() {
        // a = [1,1,2], b = [1,1,3]: pair (0,1) is tied in BOTH vectors,
        // pairs (0,2) and (1,2) are concordant.  n0 = 3, T_a = T_b = 1,
        // so tau-b = (2 - 0) / sqrt((3-1)(3-1)) = 1: the two vectors
        // induce identical orderings.
        let tau = kendall_tau(&[1.0, 1.0, 2.0], &[1.0, 1.0, 3.0]);
        assert!((tau - 1.0).abs() < 1e-12, "tau = {tau}");
    }

    #[test]
    fn joint_ties_hand_computed_partial() {
        // a = [1,1,2,3], b = [1,1,3,2]: n0 = 6.
        // (0,1): tied in both -> T_a += 1, T_b += 1.
        // (0,2),(0,3),(1,2),(1,3): concordant (C = 4).
        // (2,3): discordant (D = 1).
        // tau-b = (4-1)/sqrt((6-1)(6-1)) = 3/5.
        let tau = kendall_tau(&[1.0, 1.0, 2.0, 3.0], &[1.0, 1.0, 3.0, 2.0]);
        assert!((tau - 0.6).abs() < 1e-12, "tau = {tau}");
    }

    #[test]
    fn one_sided_tie_hand_computed() {
        // a = [1,1,2], b = [1,2,3]: n0 = 3, T_a = 1, T_b = 0, C = 2,
        // D = 0 -> tau-b = 2/sqrt(2*3) = sqrt(2/3).
        let tau = kendall_tau(&[1.0, 1.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!((tau - (2.0 / 3.0f64).sqrt()).abs() < 1e-12, "tau = {tau}");
    }

    #[test]
    fn all_joint_ties_is_zero() {
        // Both vectors constant: every pair is tied, denominator is 0.
        assert_eq!(kendall_tau(&[2.0, 2.0, 2.0], &[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        kendall_tau(&[1.0], &[1.0, 2.0]);
    }
}
