//! # graphct-metrics — ranking and distribution metrics
//!
//! The paper evaluates approximation quality with the "normalized set
//! Hamming distance … to compare the top N % ranked actors" (§III-D,
//! refs. [17], [12]) and characterizes graphs through power-law degree
//! distributions (§III-C).  This crate supplies:
//!
//! * [`rank`] — deterministic descending rankings of score vectors;
//! * [`topk`] — top-k set overlap / normalized set Hamming distance
//!   (Fig. 5's y-axis) and Jaccard similarity;
//! * [`kendall`] — Kendall rank correlation between two score vectors;
//! * [`powerlaw`] — discrete maximum-likelihood power-law exponent and
//!   Kolmogorov–Smirnov fit distance (Fig. 2's "scale-free" check).

pub mod kendall;
pub mod powerlaw;
pub mod rank;
pub mod topk;

pub use kendall::kendall_tau;
pub use powerlaw::{fit_power_law, PowerLawFit};
pub use rank::{top_fraction_indices, top_k_indices};
pub use topk::{jaccard, normalized_set_hamming, set_overlap, top_k_overlap};
